"""``python -m repro lint`` — the harmonylint CLI.

Usage::

    python -m repro lint                      # lint src/ (+benchmarks/)
    python -m repro lint src/repro/core       # narrow the scope
    python -m repro lint --format=json        # machine-readable report
    python -m repro lint --format=sarif       # CI inline annotations
    python -m repro lint --changed-only       # only files in git diff
    python -m repro lint --write-baseline     # adopt current findings
    python -m repro lint --list-rules         # rule catalogue

``--changed-only`` resolves the file set from ``git diff --name-only
<base>`` (``--base``, default HEAD); the whole tree is still parsed so
project-level rules (CACHE001, CONC001–003) keep their cross-file
models, but only findings in changed files are reported — pre-commit
runs stay fast and focused on a 155+-file tree.

Exit codes: 0 clean (everything fixed, suppressed, or baselined),
1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

from repro.analysis.baseline import Baseline
from repro.analysis.engine import AnalysisConfig, Analyzer
from repro.analysis.findings import AnalysisReport, FAMILIES
from repro.analysis.sarif import render_sarif
from repro.analysis.visitors import REGISTRY

_DEFAULT_PATHS = ("src", "benchmarks")


def _default_paths(root: str) -> list[str]:
    present = [path for path in _DEFAULT_PATHS
               if os.path.isdir(os.path.join(root, path))]
    return present or ["."]


def _render_text(report: AnalysisReport, verbose: bool) -> str:
    lines = [finding.render() for finding in report.findings]
    lines.append(f"harmonylint: {report.n_files} files, "
                 f"{len(report.findings)} finding(s), "
                 f"{len(report.baselined)} baselined, "
                 f"{len(report.suppressed)} suppressed")
    if verbose and report.stale_baseline_entries:
        lines.append("stale baseline entries (fixed; safe to delete):")
        lines.extend(f"  {entry}"
                     for entry in report.stale_baseline_entries)
    return "\n".join(lines)


def _render_json(report: AnalysisReport) -> str:
    return json.dumps({
        "findings": [f.to_json() for f in report.findings],
        "baselined": [f.to_json() for f in report.baselined],
        "suppressed": [f.to_json() for f in report.suppressed],
        "stale_baseline_entries": report.stale_baseline_entries,
        "n_files": report.n_files,
        "ok": report.ok,
    }, indent=2)


def _changed_paths(root: str, base: str) -> "set[str] | None":
    """Repo-relative ``.py`` paths changed since ``base``, or None when
    git cannot answer (not a repo, unknown ref, no git)."""
    try:
        completed = subprocess.run(
            ["git", "diff", "--name-only", base],
            cwd=root, capture_output=True, text=True, timeout=30,
            check=False)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return {line.strip().replace(os.sep, "/")
            for line in completed.stdout.splitlines()
            if line.strip().endswith(".py")}


def _list_rules() -> str:
    lines = ["harmonylint rules:"]
    family = None
    for rule_id in sorted(REGISTRY):
        rule = REGISTRY[rule_id].rule
        if rule.family != family:
            family = rule.family
            lines.append(f"  [{family}] {FAMILIES[family]}")
        lines.append(f"    {rule_id}  {rule.summary}")
    lines.append("suppress one line with: "
                 "# harmony: allow[RULE-ID] reason")
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="harmonylint: determinism & simulation-safety "
                    "static analysis for the Harmony reproduction.")
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint "
                             "(default: src/ and benchmarks/)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text")
    parser.add_argument("--changed-only", action="store_true",
                        help="report findings only for files changed "
                             "since --base (the whole tree is still "
                             "parsed for cross-file rules)")
    parser.add_argument("--base", default="HEAD",
                        help="git ref --changed-only diffs against "
                             "(default: HEAD)")
    parser.add_argument("--root", default=".",
                        help="repo root findings are reported "
                             "relative to")
    parser.add_argument("--baseline", default="lint-baseline.json",
                        help="baseline file (relative to --root)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file entirely")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline "
                             "file and exit 0")
    parser.add_argument("--select", action="append", default=[],
                        metavar="RULE",
                        help="run only these rule ids (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--output", default=None,
                        help="also write the report to this file")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="report stale baseline entries")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    unknown = [rule for rule in args.select if rule not in REGISTRY]
    if unknown:
        print(f"unknown rule id(s): {', '.join(unknown)}; see "
              f"--list-rules", file=sys.stderr)
        return 2

    report_paths = None
    if args.changed_only:
        report_paths = _changed_paths(args.root, args.base)
        if report_paths is None:
            print(f"--changed-only: git diff --name-only {args.base} "
                  f"failed (not a git checkout, or unknown ref)",
                  file=sys.stderr)
            return 2

    # --write-baseline computes with the baseline off so existing
    # entries are refreshed rather than layered on top of themselves.
    use_baseline = not (args.no_baseline or args.write_baseline)
    config = AnalysisConfig(
        paths=list(args.paths) or _default_paths(args.root),
        select=set(args.select),
        baseline_path=args.baseline if use_baseline else None,
        root=args.root,
        report_paths=report_paths)

    if args.write_baseline:
        report = Analyzer(config).run()
        baseline = Baseline.from_findings(report.findings)
        target = args.baseline if os.path.isabs(args.baseline) \
            else os.path.join(args.root, args.baseline)
        baseline.save(target)
        print(f"wrote {len(baseline.entries)} baseline entries to "
              f"{target}")
        return 0

    report = Analyzer(config).run()
    if args.format == "json":
        rendered = _render_json(report)
    elif args.format == "sarif":
        rendered = render_sarif(report)
    else:
        rendered = _render_text(report, args.verbose)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"harmonylint: {report.n_files} files, "
              f"{len(report.findings)} finding(s); report written to "
              f"{args.output}")
    else:
        print(rendered)
    return report.exit_code()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
