"""SIM — simulation-safety rules.

The discrete-event simulator owns time: a simulated process that
blocks the real thread stalls every job in the run, a mutated frozen
config invalidates every cached plan derived from it, and re-entering
the event loop from a callback corrupts the event order.  A module is
*sim-driven* when it imports from :mod:`repro.sim`; the thread-based
local runtimes (``core/local_runtime.py``, ``repro.ml``) do not, and
legitimately sleep and read wall clocks.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable

from repro.analysis.findings import Finding, Rule
from repro.analysis.visitors import (
    BaseRule,
    FileContext,
    functions_of,
    is_generator,
    register,
)

_BLOCKING_CALLS = {
    "time.sleep": "blocks the real thread under virtual time",
    "input": "blocks on stdin",
    "os.system": "blocking subprocess",
    "subprocess.run": "blocking subprocess",
    "subprocess.call": "blocking subprocess",
    "subprocess.check_call": "blocking subprocess",
    "subprocess.check_output": "blocking subprocess",
    "socket.socket": "real network I/O",
    "urllib.request.urlopen": "real network I/O",
}

#: ``open()`` is additionally blocking *inside a simulated process*;
#: at driver level (experiment result files) it is fine.
_GENERATOR_ONLY_BLOCKING = {"open": "file I/O inside a sim process"}

_CONFIG_NAME_RE = re.compile(r"(^|_)(config|cfg)$")

#: Names a simulator object goes by at call sites.
_SIM_RECEIVERS = {"sim", "simulator", "_sim", "_simulator"}

#: Callback-ish contexts: functions with these name shapes run from
#: inside the event loop.
_CALLBACK_NAME_RE = re.compile(r"^(_?on_|_?handle_|_?callback)")


def _imports_sim(ctx: FileContext) -> bool:
    return any(target.startswith("repro.sim")
               for target in ctx.imports.aliases.values())


def _receiver_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class BlockingInSimRule(BaseRule):
    rule = Rule("SIM001",
                "blocking call in sim-driven code (real sleep/I-O "
                "under virtual time)")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not _imports_sim(ctx):
            return
        generator_ranges = [
            (fn.lineno, max(getattr(fn, "end_lineno", fn.lineno),
                            fn.lineno))
            for fn in functions_of(ctx.tree) if is_generator(fn)]

        def inside_generator(line: int) -> bool:
            return any(low <= line <= high
                       for low, high in generator_ranges)

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.imports.qualify(node.func)
            if qualified in _BLOCKING_CALLS:
                yield ctx.finding(
                    self.rule, node,
                    f"{qualified}() {_BLOCKING_CALLS[qualified]}; "
                    f"yield sim.timeout(...) instead")
            elif qualified in _GENERATOR_ONLY_BLOCKING and \
                    inside_generator(node.lineno):
                yield ctx.finding(
                    self.rule, node,
                    f"{qualified}() "
                    f"{_GENERATOR_ONLY_BLOCKING[qualified]}")


@register
class FrozenConfigMutationRule(BaseRule):
    rule = Rule("SIM002",
                "mutation of a (frozen) config object after "
                "construction — use dataclasses.replace / with_*()")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        config_classes = {
            node.name for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)
            and node.name.endswith("Config")}
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if self._is_config_attribute(target):
                        yield ctx.finding(
                            self.rule, node,
                            "attribute assignment on a config object")
            elif isinstance(node, ast.Call):
                yield from self._check_setattr(ctx, node, config_classes)

    def _check_setattr(self, ctx: FileContext, node: ast.Call,
                       config_classes: set[str]) -> Iterable[Finding]:
        qualified = ctx.imports.qualify(node.func)
        if qualified not in {"setattr", "object.__setattr__"}:
            return
        if not node.args:
            return
        first = node.args[0]
        # ``object.__setattr__(self, ...)`` inside a *Config class's
        # own __post_init__ is the frozen-dataclass idiom; only flag
        # reaching into someone else's config.
        if isinstance(first, ast.Name) and first.id == "self":
            return
        name = _receiver_name(first)
        if name and (_CONFIG_NAME_RE.search(name)
                     or name in config_classes):
            yield ctx.finding(
                self.rule, node,
                f"{qualified}() on a config object bypasses frozen "
                f"dataclass protection")

    @staticmethod
    def _is_config_attribute(target: ast.expr) -> bool:
        """True for ``config.x = ...`` / ``self.config.x = ...`` but
        not for ``self.config = ...`` (construction)."""
        if not isinstance(target, ast.Attribute):
            return False
        base = target.value
        name = _receiver_name(base)
        return bool(name and _CONFIG_NAME_RE.search(name))


@register
class SimReentryRule(BaseRule):
    rule = Rule("SIM003",
                "event callback re-enters the simulator "
                "(sim.run()/sim.step() from inside the event loop)")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not _imports_sim(ctx):
            return
        for function in functions_of(ctx.tree):
            name = getattr(function, "name", "")
            reentrant_context = is_generator(function) or \
                bool(_CALLBACK_NAME_RE.match(name))
            if not reentrant_context:
                continue
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute) or \
                        func.attr not in {"run", "step"}:
                    continue
                receiver = _receiver_name(func.value)
                if receiver in _SIM_RECEIVERS:
                    yield ctx.finding(
                        self.rule, node,
                        f"{receiver}.{func.attr}() from inside "
                        f"{name or 'a sim process'}(); schedule a "
                        f"callback or yield an event instead")
