"""DET — determinism rules.

Everything the seeded-replay contract (``python -m repro check --seed
N``) and the bitwise differential pinning against
:mod:`repro.core.reference` rely on: no wall-clock reads feeding
simulation state, no process-global RNG, no hash-order-dependent
iteration or sorting, no float equality on computed times/scores.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable

from repro.analysis.dataflow import UnorderedTaint
from repro.analysis.findings import Finding, Rule
from repro.analysis.visitors import (
    BaseRule,
    FileContext,
    functions_of,
    register,
)

#: Directories whose wall-clock reads are legitimate by design: the
#: trace layer is explicitly clock-agnostic, and benchmarks measure
#: real elapsed time.
CLOCK_EXEMPT_DIRS = ("trace", "benchmarks")

_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

_GLOBAL_RANDOM_PREFIXES = ("random.",)
_NUMPY_LEGACY_RANDOM = {
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "seed", "uniform", "normal", "lognormal",
    "exponential", "poisson", "binomial", "get_state", "set_state",
}
#: numpy.random API that is explicitly seeded / stream-based and fine.
_NUMPY_RANDOM_OK = {"default_rng", "Generator", "SeedSequence",
                    "PCG64", "Philox", "SFC64", "MT19937", "BitGenerator"}

_ENTROPY_CALLS = {"os.urandom", "uuid.uuid1", "uuid.uuid4",
                  "secrets.token_bytes", "secrets.token_hex",
                  "secrets.token_urlsafe", "secrets.randbelow",
                  "secrets.choice"}

#: Names that smell like computed times/scores for the float-equality
#: rule; word-boundary'd so e.g. ``last`` or ``cosine`` do not match.
_FLOAT_KEY_RE = re.compile(
    r"(^|_)(t|time|times|score|scores|cost|costs|seconds|util"
    r"|utilization|rate|duration)(_|$)|(^|_)t\d*$")


def _name_of(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class WallClockRule(BaseRule):
    rule = Rule("DET001",
                "wall-clock read outside trace/ and benchmarks/ "
                "(simulation state must come from the sim clock)")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.in_dir(*CLOCK_EXEMPT_DIRS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.imports.qualify(node.func)
            if qualified in _WALL_CLOCK_CALLS:
                yield ctx.finding(
                    self.rule, node,
                    f"call to {qualified}(); use the simulation clock "
                    f"(sim.now) or the tracer's injected clock")


@register
class GlobalRandomRule(BaseRule):
    rule = Rule("DET002",
                "global random-module use instead of a named "
                "repro.sim.rand stream")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.imports.qualify(node.func)
            if qualified and qualified.startswith(
                    _GLOBAL_RANDOM_PREFIXES) and \
                    not qualified.startswith("random.Random"):
                yield ctx.finding(
                    self.rule, node,
                    f"call to {qualified}(); draw from a named "
                    f"RandomStreams stream so seeding stays "
                    f"compositional")


@register
class NumpyLegacyRandomRule(BaseRule):
    rule = Rule("DET003",
                "legacy numpy.random module-level RNG (process-global "
                "state) instead of a seeded Generator")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.imports.qualify(node.func)
            if not qualified or not qualified.startswith("numpy.random."):
                continue
            tail = qualified.rsplit(".", 1)[-1]
            if tail in _NUMPY_LEGACY_RANDOM and \
                    tail not in _NUMPY_RANDOM_OK:
                yield ctx.finding(
                    self.rule, node,
                    f"call to {qualified}(); use "
                    f"numpy.random.default_rng / RandomStreams")


@register
class SetOrderEscapeRule(BaseRule):
    rule = Rule("DET004",
                "set iteration order escapes into ordered state "
                "(cross-run nondeterminism under hash randomization)")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for function in functions_of(ctx.tree):
            taint = UnorderedTaint(function)
            if not taint.tainted and not self._has_set_literal(function):
                continue
            for node, description in taint.order_escapes():
                yield ctx.finding(
                    self.rule, node,
                    f"{description}; iterate sorted(...) or keep the "
                    f"data in an insertion-ordered structure")

    @staticmethod
    def _has_set_literal(function: ast.AST) -> bool:
        return any(isinstance(node, (ast.Set, ast.SetComp, ast.Call))
                   for node in ast.walk(function))


@register
class IdentityOrderSortRule(BaseRule):
    rule = Rule("DET005",
                "sort keyed by id()/hash() — ordering depends on "
                "allocation addresses / the process hash seed")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            is_sort = (isinstance(node.func, ast.Name)
                       and node.func.id == "sorted") or \
                      (isinstance(node.func, ast.Attribute)
                       and node.func.attr == "sort")
            if not is_sort:
                continue
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                if self._is_identity_key(keyword.value):
                    yield ctx.finding(
                        self.rule, node,
                        "sort key is id()/hash(); use a stable "
                        "domain key (job_id, name, ...)")

    @staticmethod
    def _is_identity_key(key: ast.expr) -> bool:
        if isinstance(key, ast.Name) and key.id in {"id", "hash"}:
            return True
        if isinstance(key, ast.Lambda):
            body = key.body
            if isinstance(body, ast.Call) and \
                    isinstance(body.func, ast.Name) and \
                    body.func.id in {"id", "hash"}:
                return True
        return False


@register
class FloatEqualityRule(BaseRule):
    rule = Rule("DET006",
                "float ==/!= on computed times/scores — exact "
                "equality of derived floats is fragile across "
                "refactors; compare with a tolerance or justify")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq))
                       for op in node.ops):
                continue
            operands = [node.left] + list(node.comparators)
            if not all(self._is_floaty(operand) for operand in operands):
                continue
            if any(self._matches_key(operand) for operand in operands):
                yield ctx.finding(
                    self.rule, node,
                    "exact float equality on a time/score value")

    #: Calls whose results are exactly comparable (``times ==
    #: sorted(times)`` is the canonical is-sorted idiom, not float
    #: arithmetic).
    _EXACT_CALLS = {"sorted", "len", "int", "tuple", "list", "set",
                    "frozenset", "str"}

    @classmethod
    def _is_floaty(cls, node: ast.expr) -> bool:
        """Name-like or a non-trivial float literal (0.0 and 1.0 are
        exact sentinels — saturation, disabled — and stay legal)."""
        if isinstance(node, ast.Call):
            return not (isinstance(node.func, ast.Name)
                        and node.func.id in cls._EXACT_CALLS)
        if isinstance(node, (ast.Name, ast.Attribute)):
            return True
        if isinstance(node, ast.Constant) and \
                isinstance(node.value, float):
            return node.value not in (0.0, 1.0)
        return False

    @classmethod
    def _matches_key(cls, node: ast.expr) -> bool:
        name = _name_of(node)
        if name is None and isinstance(node, ast.Call):
            name = _name_of(node.func)
        return bool(name and _FLOAT_KEY_RE.search(name))


@register
class EntropyRule(BaseRule):
    rule = Rule("DET007",
                "ambient entropy source (uuid4/urandom/secrets) — "
                "derive identifiers from seeded streams instead")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.imports.qualify(node.func)
            if qualified in _ENTROPY_CALLS:
                yield ctx.finding(
                    self.rule, node,
                    f"call to {qualified}(); unseeded entropy breaks "
                    f"replay")
