"""The expiring-baseline file for pre-existing harmonylint findings.

A baseline entry masks one finding so the tree can adopt a new rule
without fixing every historical hit at once.  Entries are matched by
(rule id, path, snippet hash) — *not* line number — so unrelated edits
above a finding do not unmask it.  Every entry carries a justification
and an expiry date: once expired, the finding resurfaces and CI fails,
which is the mechanism that keeps the baseline shrinking instead of
becoming a permanent dumping ground.

Format (JSON, committed at the repo root as ``lint-baseline.json``)::

    {"entries": [
        {"rule": "DET001", "path": "src/repro/check/cli.py",
         "snippet_hash": "a1b2c3d4",
         "reason": "CLI elapsed-time report; not simulation state",
         "expires": "2027-06-30"},
        ...
    ]}
"""

from __future__ import annotations

import datetime
import json
import os
import zlib
from dataclasses import dataclass

from repro.analysis.findings import Finding

#: New entries written by ``--write-baseline`` expire after this many
#: days unless edited — long enough to schedule the fix, short enough
#: that the baseline cannot silently fossilize.
DEFAULT_EXPIRY_DAYS = 180

#: Environment override for "today" so baseline-expiry behaviour is
#: testable (and reproducible) without a real clock.
TODAY_ENV = "HARMONY_LINT_TODAY"


def _today() -> datetime.date:
    override = os.environ.get(TODAY_ENV)
    if override:
        return datetime.date.fromisoformat(override)
    # The expiry check is the one place the linter needs the real
    # date; it never feeds simulation state.
    return datetime.date.today()  # harmony: allow[DET001] baseline expiry needs the real date


def snippet_hash(snippet: str) -> str:
    """Stable 8-hex-digit hash of a finding's stripped source line."""
    return format(zlib.crc32(snippet.strip().encode()), "08x")


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    snippet_hash: str
    reason: str
    expires: str  # ISO date

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.snippet_hash)

    def expired(self) -> bool:
        return datetime.date.fromisoformat(self.expires) < _today()

    def to_json(self) -> dict:
        return {"rule": self.rule, "path": self.path,
                "snippet_hash": self.snippet_hash,
                "reason": self.reason, "expires": self.expires}


class Baseline:
    """The committed set of masked findings."""

    def __init__(self, entries: list[BaselineEntry] | None = None):
        self.entries = list(entries or [])
        self._matched: set[tuple[str, str, str]] = set()

    # -- persistence -----------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "Baseline":
        if not os.path.exists(path):
            return cls()
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        entries = [BaselineEntry(**item) for item in data.get("entries", [])]
        return cls(entries)

    def save(self, path: str) -> None:
        data = {"entries": [entry.to_json() for entry in sorted(
            self.entries, key=lambda e: (e.path, e.rule, e.snippet_hash))]}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2)
            handle.write("\n")

    # -- matching --------------------------------------------------------

    def match(self, finding: Finding) -> "BaselineEntry | None":
        """The entry masking ``finding``, or None.

        An *expired* entry is treated as absent (the finding resurfaces)
        but is still recorded as matched so it is not reported stale.
        """
        key = (finding.rule_id, finding.path,
               snippet_hash(finding.snippet))
        for entry in self.entries:
            if entry.key() == key:
                self._matched.add(key)
                return entry
        return None

    def stale_entries(self) -> list[BaselineEntry]:
        """Entries that matched no finding this run (fixed or moved)."""
        return [entry for entry in self.entries
                if entry.key() not in self._matched]

    # -- authoring -------------------------------------------------------

    @classmethod
    def from_findings(cls, findings: list[Finding],
                      reason: str = "TODO: justify or fix",
                      expiry_days: int = DEFAULT_EXPIRY_DAYS) -> "Baseline":
        expires = (_today()
                   + datetime.timedelta(days=expiry_days)).isoformat()
        entries = [BaselineEntry(rule=f.rule_id, path=f.path,
                                 snippet_hash=snippet_hash(f.snippet),
                                 reason=reason, expires=expires)
                   for f in findings]
        # One entry per (rule, path, snippet) even when a line repeats.
        unique = {entry.key(): entry for entry in entries}
        return cls(list(unique.values()))
