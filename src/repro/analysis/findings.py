"""Finding and rule descriptors shared by the harmonylint engine.

A :class:`Rule` names one statically checkable property of the tree
(``DET001`` etc.); a :class:`Finding` is one violation of a rule,
anchored to a ``file:line`` so editors and CI can jump to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: The rule families (see README "Static analysis").
FAMILIES = {
    "DET": "determinism",
    "SIM": "simulation safety",
    "TRC": "trace hygiene",
    "CACHE": "plan-cache fingerprint coverage",
    "CONC": "concurrency discipline",
}


@dataclass(frozen=True)
class Rule:
    """One statically checkable property, e.g. ``DET001``."""

    rule_id: str
    summary: str

    @property
    def family(self) -> str:
        return self.rule_id.rstrip("0123456789")

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(
                f"rule {self.rule_id!r} is not in a known family "
                f"({sorted(FAMILIES)})")


@dataclass(frozen=True)
class Finding:
    """One rule violation at ``path:line``."""

    rule_id: str
    path: str
    line: int
    message: str
    #: The stripped source line, used for drift-tolerant baselining.
    snippet: str = ""
    #: Set when the finding matched an *expired* baseline entry.
    baseline_expired: bool = False

    def anchor(self) -> str:
        return f"{self.path}:{self.line}"

    def render(self) -> str:
        note = " [baseline expired]" if self.baseline_expired else ""
        return f"{self.anchor()}: {self.rule_id} {self.message}{note}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
            "baseline_expired": self.baseline_expired,
        }


@dataclass
class AnalysisReport:
    """Everything one ``python -m repro lint`` run produced."""

    findings: list[Finding] = field(default_factory=list)
    #: Findings masked by a live (non-expired) baseline entry.
    baselined: list[Finding] = field(default_factory=list)
    #: Findings masked by an inline ``# harmony: allow[...]`` comment.
    suppressed: list[Finding] = field(default_factory=list)
    n_files: int = 0
    #: Baseline entries that matched nothing (stale; safe to delete).
    stale_baseline_entries: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def exit_code(self) -> int:
        return 0 if self.ok else 1
