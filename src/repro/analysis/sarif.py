"""SARIF 2.1.0 exporter for harmonylint reports.

SARIF (Static Analysis Results Interchange Format) is what code
hosts ingest to render findings as inline review annotations; CI
uploads the file produced by ``python -m repro lint --format sarif``
and every DET/SIM/TRC/CACHE/CONC finding lands on its line in the PR
diff.  Only unsuppressed findings become results — suppressed and
baselined ones are by definition accepted.
"""

from __future__ import annotations

import json

from repro.analysis.findings import AnalysisReport, FAMILIES, Finding
from repro.analysis.visitors import REGISTRY

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                 "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def _rule_descriptor(rule_id: str) -> dict:
    rule = REGISTRY[rule_id].rule
    return {
        "id": rule_id,
        "name": REGISTRY[rule_id].__name__,
        "shortDescription": {"text": rule.summary},
        "properties": {
            "family": rule.family,
            "familyDescription": FAMILIES[rule.family],
        },
    }


def _result(finding: Finding) -> dict:
    result = {
        "ruleId": finding.rule_id,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path,
                    "uriBaseId": "SRCROOT",
                },
                "region": {
                    "startLine": max(finding.line, 1),
                    "snippet": {"text": finding.snippet},
                },
            },
        }],
    }
    if finding.baseline_expired:
        result["properties"] = {"baselineExpired": True}
    return result


def render_sarif(report: AnalysisReport,
                 tool_version: str = "0") -> str:
    """The report as a SARIF 2.1.0 JSON document (one run)."""
    referenced = sorted({f.rule_id for f in report.findings}
                        & set(REGISTRY))
    rules = [_rule_descriptor(rule_id) for rule_id in referenced]
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "harmonylint",
                    "informationUri":
                        "https://example.invalid/harmonylint",
                    "version": tool_version,
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": "file:///"},
            },
            "results": [_result(f) for f in report.findings],
            "properties": {
                "filesAnalyzed": report.n_files,
                "suppressed": len(report.suppressed),
                "baselined": len(report.baselined),
            },
        }],
    }
    return json.dumps(document, indent=2)
