"""harmonylint: determinism & simulation-safety static analysis.

An AST-based, rule-driven analyzer (``python -m repro lint``) with
four domain rule families generic linters cannot express:

- **DET** determinism: wall clocks, global RNG, set-order escapes,
  identity-keyed sorts, float equality on times/scores;
- **SIM** simulation safety: blocking calls in sim processes, frozen
  config mutation, event-loop re-entry;
- **TRC** trace hygiene: span begin/end balance, metric and span
  names pinned to the declared registry;
- **CACHE** PlanCache fingerprint coverage of scoring inputs.

Suppress one line with ``# harmony: allow[RULE-ID] reason``; adopt
pre-existing findings with the expiring baseline file
(``lint-baseline.json``, ``--write-baseline``).
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.engine import (
    AnalysisConfig,
    Analyzer,
    collect_sources,
)
from repro.analysis.findings import AnalysisReport, Finding, Rule
from repro.analysis.visitors import BaseRule, FileContext, REGISTRY

__all__ = [
    "AnalysisConfig",
    "AnalysisReport",
    "Analyzer",
    "Baseline",
    "BaselineEntry",
    "BaseRule",
    "FileContext",
    "Finding",
    "REGISTRY",
    "Rule",
    "collect_sources",
]
