"""The trace event bus and metrics registry.

Design constraints, in order:

1. **Zero cost when off.**  Instrumented components either hold ``None``
   instead of a tracer, or call the no-op :data:`NULL_TRACER`; neither
   path allocates.  The config gate is a single attribute check.
2. **Clock-agnostic.**  The tracer timestamps events through a clock
   *callable*: the cluster simulator passes its virtual ``now``, the
   thread-based local runtime passes ``time.perf_counter``.  The trace
   layer therefore never imports the simulator (no dependency cycle).
3. **Chrome-trace-shaped.**  Events carry a :class:`Track` — a
   (process, thread) pair — so the exporter can render machine sets as
   Perfetto "processes" with per-job CPU/NET/DISK lanes as "threads".
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.errors import TraceError

#: Timestamp source: seconds as float, monotone non-decreasing.
Clock = Callable[[], float]


@dataclass(frozen=True)
class TraceConfig:
    """Switchboard for the observability layer (off by default)."""

    #: Master switch: nothing is recorded (and nothing is paid) when off.
    enabled: bool = False
    #: Hard cap on recorded span+instant events; beyond it new events
    #: are counted in :attr:`Tracer.dropped_events` instead of stored,
    #: so an unexpectedly long run cannot exhaust memory.
    max_events: int = 2_000_000
    #: Record a time-series sample on every counter/gauge update (the
    #: Chrome-trace "C" lanes).  Final values are always kept.
    counter_samples: bool = True


@dataclass(frozen=True)
class Track:
    """A (process, thread) slot in the trace, pre-interned to ints."""

    pid: int
    tid: int


@dataclass
class Span:
    """A closed duration event on one track."""

    track: Track
    name: str
    cat: str
    start: float
    end: float
    args: dict[str, Any] | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class InstantEvent:
    """A point-in-time event (scheduler decision, fault, trigger...)."""

    name: str
    cat: str
    time: float
    track: Track | None = None
    args: dict[str, Any] | None = None


@dataclass
class SpanHandle:
    """An open span returned by :meth:`Tracer.begin`."""

    track: Track
    name: str
    cat: str
    start: float
    args: dict[str, Any] | None = None
    closed: bool = False


class Counter:
    """A monotonically accumulating named value."""

    __slots__ = ("name", "value", "samples", "_clock")

    def __init__(self, name: str, clock: Clock,
                 keep_samples: bool = True):
        self.name = name
        self.value = 0.0
        #: ``(time, value)`` after each update; None when sampling off.
        self.samples: list[tuple[float, float]] | None = \
            [] if keep_samples else None
        self._clock = clock

    def add(self, delta: float = 1.0) -> None:
        self.value += delta
        if self.samples is not None:
            self.samples.append((self._clock(), self.value))


class Gauge:
    """A named value that moves both ways (queue depth, alpha, ...)."""

    __slots__ = ("name", "value", "samples", "_clock")

    def __init__(self, name: str, clock: Clock,
                 keep_samples: bool = True):
        self.name = name
        self.value = 0.0
        self.samples: list[tuple[float, float]] | None = \
            [] if keep_samples else None
        self._clock = clock

    def set(self, value: float) -> None:
        self.value = float(value)
        if self.samples is not None:
            self.samples.append((self._clock(), self.value))


class MetricsRegistry:
    """Named counters and gauges, owned by a tracer.

    The registry is keyed by name only — deliberately *not* by group or
    placement epoch — so per-job counters keep accumulating across
    migrations and regroupings.
    """

    def __init__(self, clock: Clock, keep_samples: bool = True):
        self._clock = clock
        self._keep_samples = keep_samples
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = Counter(name, self._clock, self._keep_samples)
            self.counters[name] = counter
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = Gauge(name, self._clock, self._keep_samples)
            self.gauges[name] = gauge
        return gauge

    def total(self, suffix: str) -> float:
        """Sum of all counters whose name ends with ``suffix`` (e.g.
        ``.steps`` summed over every job)."""
        return sum(counter.value
                   for name, counter in self.counters.items()
                   if name.endswith(suffix))

    def snapshot(self) -> dict[str, float]:
        """Final values of every counter and gauge, by name."""
        values = {name: c.value for name, c in self.counters.items()}
        values.update({name: g.value for name, g in self.gauges.items()})
        return values


class Tracer:
    """Records spans, instants, and metrics against one clock."""

    enabled = True

    def __init__(self, clock: Clock,
                 config: TraceConfig | None = None):
        self.config = config if config is not None \
            else TraceConfig(enabled=True)
        self._clock = clock
        self.spans: list[Span] = []
        self.instants: list[InstantEvent] = []
        self.registry = MetricsRegistry(
            clock, keep_samples=self.config.counter_samples)
        self.dropped_events = 0
        self._open_spans = 0
        #: process name -> pid; (pid, thread name) -> tid.
        self._pids: dict[str, int] = {}
        self._tids: dict[tuple[int, str], int] = {}
        self.process_names: dict[int, str] = {}
        self.process_sort: dict[int, int] = {}
        self.thread_names: dict[tuple[int, int], str] = {}
        self.thread_sort: dict[tuple[int, int], int] = {}

    # -- clock / capacity ----------------------------------------------

    @property
    def now(self) -> float:
        return self._clock()

    @property
    def open_spans(self) -> int:
        """Spans begun but not yet ended (0 after a clean run)."""
        return self._open_spans

    @property
    def n_events(self) -> int:
        return len(self.spans) + len(self.instants)

    def _has_room(self) -> bool:
        if self.n_events < self.config.max_events:
            return True
        self.dropped_events += 1
        return False

    # -- track interning ------------------------------------------------

    def track(self, process: str, thread: str,
              process_sort: int | None = None,
              thread_sort: int | None = None) -> Track:
        """Intern a (process, thread) label pair to a :class:`Track`.

        Sort hints control Perfetto's display order; they are applied
        on first use of a label and ignored afterwards.
        """
        pid = self._pids.get(process)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[process] = pid
            self.process_names[pid] = process
            if process_sort is not None:
                self.process_sort[pid] = process_sort
        tid = self._tids.get((pid, thread))
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[(pid, thread)] = tid
            self.thread_names[(pid, tid)] = thread
            if thread_sort is not None:
                self.thread_sort[(pid, tid)] = thread_sort
        return Track(pid, tid)

    # -- span events -----------------------------------------------------

    def begin(self, track: Track, name: str, cat: str = "",
              args: dict[str, Any] | None = None) -> SpanHandle:
        """Open a span at the current clock time."""
        self._open_spans += 1
        return SpanHandle(track=track, name=name, cat=cat,
                          start=self._clock(), args=args)

    def end(self, handle: SpanHandle,
            args: dict[str, Any] | None = None) -> Span | None:
        """Close an open span at the current clock time."""
        if handle.closed:
            raise TraceError(f"span {handle.name!r} already closed")
        handle.closed = True
        self._open_spans -= 1
        merged = handle.args
        if args:
            merged = dict(merged or {})
            merged.update(args)
        return self._record_span(handle.track, handle.name, handle.cat,
                                 handle.start, self._clock(), merged)

    def complete(self, track: Track, name: str, start: float,
                 end: float | None = None, cat: str = "",
                 args: dict[str, Any] | None = None) -> Span | None:
        """Record a span whose boundaries are already known."""
        return self._record_span(track, name, cat, start,
                                 self._clock() if end is None else end,
                                 args)

    def _record_span(self, track: Track, name: str, cat: str,
                     start: float, end: float,
                     args: dict[str, Any] | None) -> Span | None:
        if end < start:
            raise TraceError(
                f"span {name!r} ends before it starts "
                f"({end} < {start})")
        if not self._has_room():
            return None
        span = Span(track=track, name=name, cat=cat, start=start,
                    end=end, args=args)
        self.spans.append(span)
        return span

    # -- instant events ---------------------------------------------------

    def instant(self, name: str, cat: str = "",
                track: Track | None = None,
                args: dict[str, Any] | None = None) -> None:
        if not self._has_room():
            return
        self.instants.append(InstantEvent(
            name=name, cat=cat, time=self._clock(), track=track,
            args=args))

    # -- metrics ----------------------------------------------------------

    def counter(self, name: str) -> Counter:
        return self.registry.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(name)


class _NullMetric:
    """Accepts counter/gauge updates and drops them."""

    __slots__ = ()
    name = ""
    value = 0.0
    samples = None

    def add(self, delta: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()
_NULL_TRACK = Track(0, 0)
_NULL_HANDLE = SpanHandle(track=_NULL_TRACK, name="", cat="", start=0.0,
                          closed=True)


class NullTracer:
    """The do-nothing tracer installed when tracing is disabled.

    Implements the full :class:`Tracer` surface so instrumentation can
    call through unconditionally on cold paths; hot paths should still
    check :attr:`enabled` once and skip building event arguments.
    """

    enabled = False
    config = TraceConfig(enabled=False)
    spans: tuple = ()
    instants: tuple = ()
    dropped_events = 0
    open_spans = 0
    n_events = 0
    process_names: dict = {}
    thread_names: dict = {}
    process_sort: dict = {}
    thread_sort: dict = {}

    def __init__(self):
        self.registry = MetricsRegistry(lambda: 0.0, keep_samples=False)

    @property
    def now(self) -> float:
        return 0.0

    def track(self, process: str, thread: str,
              process_sort: int | None = None,
              thread_sort: int | None = None) -> Track:
        return _NULL_TRACK

    def begin(self, track: Track, name: str, cat: str = "",
              args: dict[str, Any] | None = None) -> SpanHandle:
        return _NULL_HANDLE

    def end(self, handle: SpanHandle,
            args: dict[str, Any] | None = None) -> None:
        return None

    def complete(self, track: Track, name: str, start: float,
                 end: float | None = None, cat: str = "",
                 args: dict[str, Any] | None = None) -> None:
        return None

    def instant(self, name: str, cat: str = "",
                track: Track | None = None,
                args: dict[str, Any] | None = None) -> None:
        return None

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return _NULL_METRIC


#: Shared no-op tracer; safe to use from any component.
NULL_TRACER = NullTracer()


def build_tracer(clock: Clock, config: TraceConfig) -> "Tracer | NullTracer":
    """The tracer a runtime should install for ``config``."""
    if not config.enabled:
        return NULL_TRACER
    return Tracer(clock, config)
