"""Trace exporters: Chrome-trace/Perfetto JSON and counter CSV.

The JSON follows the Trace Event Format (the ``traceEvents`` array
understood by ``chrome://tracing`` and https://ui.perfetto.dev): span
events as ``"X"`` (complete) records, instants as ``"i"``, counters as
``"C"`` time series, with ``"M"`` metadata naming the processes
(machine sets / subsystems) and threads (per-job CPU/NET/DISK lanes).
Timestamps are microseconds, converted from the tracer's float-seconds
clock.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

#: Seconds (tracer clock) to microseconds (trace event format).
_US = 1e6

#: Dedicated metadata process for registry counter lanes.
_METRICS_PROCESS = "metrics"


def chrome_trace_events(tracer) -> list[dict[str, Any]]:
    """Render a tracer's recorded events as trace-event dicts.

    Metadata records lead; payload records follow sorted by timestamp,
    so consumers that require monotone ``ts`` streams are satisfied.
    """
    meta: list[dict[str, Any]] = []
    for pid, name in tracer.process_names.items():
        meta.append({"ph": "M", "name": "process_name", "pid": pid,
                     "tid": 0, "args": {"name": name}})
    for pid, sort_index in tracer.process_sort.items():
        meta.append({"ph": "M", "name": "process_sort_index", "pid": pid,
                     "tid": 0, "args": {"sort_index": sort_index}})
    for (pid, tid), name in tracer.thread_names.items():
        meta.append({"ph": "M", "name": "thread_name", "pid": pid,
                     "tid": tid, "args": {"name": name}})
    for (pid, tid), sort_index in tracer.thread_sort.items():
        meta.append({"ph": "M", "name": "thread_sort_index", "pid": pid,
                     "tid": tid, "args": {"sort_index": sort_index}})

    payload: list[dict[str, Any]] = []
    for span in tracer.spans:
        event = {"ph": "X", "name": span.name,
                 "ts": span.start * _US,
                 "dur": max(0.0, span.duration) * _US,
                 "pid": span.track.pid, "tid": span.track.tid}
        if span.cat:
            event["cat"] = span.cat
        if span.args:
            event["args"] = span.args
        payload.append(event)
    for instant in tracer.instants:
        event = {"ph": "i", "name": instant.name,
                 "ts": instant.time * _US}
        if instant.track is not None:
            event["pid"] = instant.track.pid
            event["tid"] = instant.track.tid
            event["s"] = "t"
        else:
            event["pid"] = 0
            event["tid"] = 0
            event["s"] = "g"  # global scope: a full-height marker
        if instant.cat:
            event["cat"] = instant.cat
        if instant.args:
            event["args"] = instant.args
        payload.append(event)

    counter_pid = _counter_pid(tracer)
    if counter_pid is not None:
        meta.append({"ph": "M", "name": "process_name",
                     "pid": counter_pid, "tid": 0,
                     "args": {"name": _METRICS_PROCESS}})
        for metric in list(tracer.registry.counters.values()) + \
                list(tracer.registry.gauges.values()):
            for when, value in metric.samples or ():
                payload.append({"ph": "C", "name": metric.name,
                                "ts": when * _US, "pid": counter_pid,
                                "tid": 0,
                                "args": {"value": value}})

    payload.sort(key=lambda event: event["ts"])
    return meta + payload


def _counter_pid(tracer) -> "int | None":
    """A pid for counter lanes, or None when there are no samples."""
    has_samples = any(
        metric.samples
        for metric in list(tracer.registry.counters.values())
        + list(tracer.registry.gauges.values()))
    if not has_samples:
        return None
    return max(tracer.process_names, default=0) + 1


def write_chrome_trace(path: "str | Path", tracer) -> Path:
    """Write the Perfetto-loadable JSON file; returns the path."""
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(tracer),
        "otherData": {
            "clock": "simulated seconds x 1e6 unless stated otherwise",
            "droppedEvents": tracer.dropped_events,
        },
    }
    with target.open("w") as handle:
        json.dump(document, handle)
    return target


def counter_rows(tracer) -> list[tuple[str, str, str]]:
    """``(kind, name, value)`` rows for the registry, name-sorted."""
    rows = [("counter", name, f"{counter.value:.6g}")
            for name, counter in tracer.registry.counters.items()]
    rows += [("gauge", name, f"{gauge.value:.6g}")
             for name, gauge in tracer.registry.gauges.items()]
    rows.sort(key=lambda row: (row[0], row[1]))
    return rows
