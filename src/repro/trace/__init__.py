"""Structured tracing and metrics (`repro.trace`).

A low-overhead observability layer for the reproduction: a
:class:`Tracer` records *span* events (COMP/COMM subtask execution,
reload stalls, barrier waits, checkpoint pauses) and *instant* events
(scheduler decisions, regroup triggers, fault injections) against any
monotone clock — the simulated clock for cluster runs, the wall clock
for the thread-based local runtime — plus a named counter/gauge
:class:`MetricsRegistry`.

Tracing is disabled by default (:class:`TraceConfig`); when off, every
instrumentation site either skips entirely or hits the no-op
:data:`NULL_TRACER`, so the hot simulation paths pay nothing.

Exporters render a recorded trace as Chrome-trace/Perfetto JSON
(machine sets as "processes", per-job CPU/NET/DISK lanes as "threads")
and the counter registry as CSV.
"""

from repro.trace.export import (
    chrome_trace_events,
    counter_rows,
    write_chrome_trace,
)
from repro.trace.tracer import (
    Counter,
    Gauge,
    InstantEvent,
    MetricsRegistry,
    NULL_TRACER,
    NullTracer,
    Span,
    SpanHandle,
    TraceConfig,
    Tracer,
    Track,
    build_tracer,
)

__all__ = [
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "InstantEvent",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "SpanHandle",
    "TraceConfig",
    "Tracer",
    "Track",
    "build_tracer",
    "chrome_trace_events",
    "counter_rows",
    "write_chrome_trace",
]
