"""The declared universe of trace event and metric names.

Every ``tracer.instant``/``counter``/``gauge`` name and every span
name emitted anywhere in the package is declared here, as an exact
string or as a ``*``-pattern for names built with an interpolated
prefix (``job.<job_id>.steps`` is declared as ``job.*.steps``).

Two consumers:

1. ``repro.analysis`` (harmonylint rule TRC002/TRC003) checks call
   sites against these sets at lint time, so a typo'd or undeclared
   metric name fails CI instead of silently creating a new lane.
2. Exporters and dashboards can treat this module as the schema of a
   trace file.

When adding instrumentation, declare the name here first.
"""

from __future__ import annotations

import fnmatch
from collections.abc import Iterable

#: Instant (point-in-time) event names.
INSTANT_NAMES = frozenset({
    # scheduler decisions (core/master.py)
    "machine-crash", "regroup-check", "placement", "plan-patch",
    "apply-plan", "epoch-close",
    # group lifecycle (core/group_runtime.py)
    "group-start",
    # fault subsystem (repro.faults); the injected-kind instants carry
    # the FaultKind values verbatim.
    "fault-detected", "repair",
    "machine_crash", "machine_slowdown", "network_drop",
    # sharded scheduling (repro.shard): placer routing decisions and
    # cross-cell rebalance passes.
    "placer.route", "shard.rebalance",
})

#: Counter names; ``*`` stands for one interpolated component.
COUNTER_NAMES = frozenset({
    "faults.detected", "faults.injected", "faults.repaired",
    "scheduler.migrations", "scheduler.regroups",
    # per-job counters (prefix ``job.<job_id>``)
    "*.steps", "*.bytes_pulled", "*.bytes_pushed",
    "*.barrier_wait_seconds", "*.stall_seconds", "*.gc_seconds",
    "*.reloads", "*.reload_bytes",
    "job.*.checkpoints", "job.*.barrier_wait_seconds",
    # sharded scheduling (repro.shard)
    "shard.cells_rescheduled", "shard.jobs_moved",
})

#: Gauge names (includes the ``trace_gauge`` lanes of RateResource).
GAUGE_NAMES = frozenset({
    "*.alpha",
    "*.cpu.level", "*.net.level", "*.disk.level",
})

#: Span (duration) event names.
SPAN_NAMES = frozenset({
    "COMP", "PULL", "PUSH", "RELOAD", "CHECKPOINT", "RELOAD-STALL",
    "wait·*", "barrier·*",
    # per-cell schedule spans of the sharded scheduler (repro.shard)
    "cell·*",
})


def is_declared(name: str, declared: Iterable[str]) -> bool:
    """True when ``name`` (an exact string, or a ``*``-pattern
    reconstructed from an f-string) matches a declared name.

    A pattern argument matches only a declared pattern with the same
    shape — ``*.steps`` is declared or it is not; wildcard-vs-wildcard
    subsumption is deliberately not attempted.
    """
    if name in declared:
        return True
    if "*" in name:
        return False
    return any("*" in pattern and fnmatch.fnmatchcase(name, pattern)
               for pattern in declared)
