"""Name -> runtime registry for every scheduler the repo can run.

One place maps a policy name to a ready-to-``run()`` runtime, so the
experiments, the tournament and the CLI all speak the same names:

* ``harmony`` / ``naive`` / ``isolated`` — the paper's three systems
  (§V-A), exactly the pre-existing runtimes.
* ``fcfs`` / ``easy`` / ``conservative`` — the queueing family on
  dedicated allocations (:mod:`repro.policies.queueing`).
* ``synergy`` / ``cassini`` — resource-aware packing and COMM
  interleaving on Harmony's coordinated executor
  (:mod:`repro.policies.packing` / :mod:`repro.policies.interleave`).
* ``harmony-static`` — Algorithm 1's grouping as a one-shot queue
  policy, without profiling or dynamic regrouping
  (:mod:`repro.policies.planner`).

Every factory takes ``(n_machines, workload, config)`` and the listing
order of :func:`available` is the registration order — fixed in this
file, never hash order.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.base import BaselineRuntime
from repro.baselines.isolated import IsolatedRuntime
from repro.baselines.naive import NaiveRuntime
from repro.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.core.group_runtime import ExecutionMode
from repro.core.perfmodel import PerfModel
from repro.core.runtime import HarmonyRuntime
from repro.core.scheduler import HarmonyScheduler
from repro.errors import SchedulingError
from repro.policies.interleave import cassini
from repro.policies.packing import synergy
from repro.policies.planner import HarmonyPlanPolicy
from repro.policies.queueing import conservative, easy, fcfs
from repro.workloads.apps import JobSpec

_REGISTRY: dict[str, tuple[str, object]] = {}


def register(name: str, summary: str):
    """Decorator: register a ``(n_machines, workload, config)`` factory."""
    def wrap(factory):
        if name in _REGISTRY:
            raise SchedulingError(f"duplicate policy name {name!r}")
        _REGISTRY[name] = (summary, factory)
        return factory
    return wrap


def available() -> tuple[tuple[str, str], ...]:
    """``(name, summary)`` pairs in registration order."""
    return tuple((name, summary)
                 for name, (summary, _) in _REGISTRY.items())


def build_runtime(name: str, n_machines: int,
                  workload: Sequence[JobSpec],
                  config: SimConfig = DEFAULT_SIM_CONFIG):
    """Instantiate the named runtime over a workload."""
    entry = _REGISTRY.get(name)
    if entry is None:
        known = ", ".join(sorted(_REGISTRY))
        raise SchedulingError(f"unknown policy {name!r}; known: {known}")
    _, factory = entry
    return factory(n_machines, workload, config)


def _perf_model(config: SimConfig) -> PerfModel:
    return PerfModel(cpu_weight=config.scheduler.cpu_weight)


# -- the paper's three systems ------------------------------------------------

@register("harmony", "the paper's full system (profile + regroup + spill)")
def _harmony(n_machines, workload, config):
    return HarmonyRuntime(n_machines, workload, config=config)


@register("naive", "uncoordinated co-location (Gandiva style), §V-A")
def _naive(n_machines, workload, config):
    return NaiveRuntime(n_machines, workload, config=config)


@register("isolated", "dedicated per-job machines (Optimus/SLAQ), §V-A")
def _isolated(n_machines, workload, config):
    return IsolatedRuntime(n_machines, workload, config=config)


# -- queueing family (dedicated allocations, no co-location) ------------------

@register("fcfs", "strict first-come-first-served, no backfill")
def _fcfs(n_machines, workload, config):
    return BaselineRuntime(
        n_machines, workload, mode=ExecutionMode.ISOLATED, name="fcfs",
        config=config, dop_scale=config.policy.queue_dop_scale,
        policy=fcfs())


@register("easy", "EASY backfill: one reservation for the queue head")
def _easy(n_machines, workload, config):
    return BaselineRuntime(
        n_machines, workload, mode=ExecutionMode.ISOLATED, name="easy",
        config=config, dop_scale=config.policy.queue_dop_scale,
        policy=easy())


@register("conservative",
          "conservative backfill: reservations for every waiting job")
def _conservative(n_machines, workload, config):
    return BaselineRuntime(
        n_machines, workload, mode=ExecutionMode.ISOLATED,
        name="conservative", config=config,
        dop_scale=config.policy.queue_dop_scale, policy=conservative())


# -- co-locating competitors on the coordinated executor ----------------------

@register("synergy", "resource-sensitive packing by Eq. 3 score gain")
def _synergy(n_machines, workload, config):
    return BaselineRuntime(
        n_machines, workload, mode=ExecutionMode.HARMONY,
        name="synergy", config=config,
        policy=synergy(_perf_model(config),
                       max_group_jobs=config.policy.max_group_jobs,
                       gain_threshold=config.policy.pack_gain_threshold))


@register("cassini", "phase-offset COMM interleaving by compatibility")
def _cassini(n_machines, workload, config):
    return BaselineRuntime(
        n_machines, workload, mode=ExecutionMode.HARMONY,
        name="cassini", config=config,
        policy=cassini(
            _perf_model(config),
            max_group_jobs=config.policy.max_group_jobs,
            compat_threshold=config.policy.interleave_compat_threshold))


@register("harmony-static",
          "Algorithm 1 grouping once at admission, no adaptation")
def _harmony_static(n_machines, workload, config):
    def scheduler_factory(memory_floor):
        return HarmonyScheduler(perf_model=_perf_model(config),
                                config=config.scheduler,
                                memory_floor=memory_floor)
    return BaselineRuntime(
        n_machines, workload, mode=ExecutionMode.HARMONY,
        name="harmony-static", config=config,
        policy=HarmonyPlanPolicy(scheduler_factory))
