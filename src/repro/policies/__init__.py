"""Pluggable scheduling policies and the policy registry.

The protocol lives in :mod:`repro.policies.base`: a policy observes
the queue/cluster through a :class:`~repro.policies.base.PolicyObservation`
and decides which queued jobs start, grouped how
(:class:`~repro.policies.base.PolicyDecision`).  The policy families:

* :mod:`repro.policies.queueing` — FIFO packing (the legacy baseline
  scan) plus EASY / conservative reservation backfill.
* :mod:`repro.policies.packing` — Synergy-style resource-sensitive
  packing scored on the Eq. 3 perf model.
* :mod:`repro.policies.interleave` — CASSINI-style phase-offset COMM
  interleaving.
* :mod:`repro.policies.planner` — Harmony's Algorithm 1 behind the
  planner seam, plus its one-shot queue-policy form.
* :mod:`repro.policies.registry` — name -> runtime factories for all
  of the above and the paper's three systems.
"""

from repro.policies.base import (
    FunctionPolicy,
    GroupStart,
    PolicyDecision,
    PolicyObservation,
    RunningGroupView,
    SchedulingPolicy,
)
from repro.policies.interleave import cassini
from repro.policies.packing import synergy
from repro.policies.planner import (
    HarmonyPlanPolicy,
    PlannerPolicy,
    SchedulerPlanner,
)
from repro.policies.queueing import (
    conservative,
    conservative_backfill,
    easy,
    easy_backfill,
    fcfs,
    hybrid_backfill,
    packed_fifo,
)
# The registry imports the runtimes, and the runtimes' shared base
# imports repro.policies.base — so the registry exports resolve lazily
# (PEP 562) to keep `import repro.policies.base` from cycling through
# a partially initialized baselines package.
_REGISTRY_EXPORTS = ("available", "build_runtime", "register")


def __getattr__(name: str):
    if name in _REGISTRY_EXPORTS:
        from repro.policies import registry
        return getattr(registry, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FunctionPolicy",
    "GroupStart",
    "PolicyDecision",
    "PolicyObservation",
    "RunningGroupView",
    "SchedulingPolicy",
    "HarmonyPlanPolicy",
    "PlannerPolicy",
    "SchedulerPlanner",
    "available",
    "build_runtime",
    "register",
    "cassini",
    "synergy",
    "conservative",
    "conservative_backfill",
    "easy",
    "easy_backfill",
    "fcfs",
    "hybrid_backfill",
    "packed_fifo",
]
