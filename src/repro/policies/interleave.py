"""CASSINI-style network-aware COMM interleaving.

CASSINI (NSDI '24) places jobs that share network links so their
communication phases *interleave*: each job's COMM burst lands in its
partners' COMP gaps, found by sliding per-job phase offsets against a
ring-buffer model of link demand.  Harmony's execution engine already
serializes one primary COMM plus a reduced-rate secondary (Fig. 7);
this policy generalizes those two slots to a *planned* stagger across
up to ``max_group_jobs`` partners.

Partner selection uses a phase-compatibility score straight out of
Eq. 1::

    compat(G, m) = max_j T_itr_j / T_g_itr

``compat == 1`` means the group is job-bound — every job's COMM hides
entirely inside the others' COMP, a perfect interleave; lower values
mean the CPU or the network serializes and someone waits.  Groups only
form while compatibility stays above a threshold.

The phase offsets delay job *k*'s first PULL by the summed COMM demand
of the jobs before it, so the group's COMM bursts enter the pipeline
maximally spread instead of colliding at start-up (after the first
epoch the engine's primary/secondary discipline keeps them apart).
"""

from __future__ import annotations

from functools import partial

from repro.core.perfmodel import PerfModel
from repro.policies.base import (
    FunctionPolicy,
    GroupStart,
    PolicyDecision,
    PolicyObservation,
)

#: Strictly-better margin for partner selection; ties resolve to the
#: earliest queued candidate so the scan is hash-order independent.
_TIE_EPSILON = 1e-12


def _compatibility(perf_model: PerfModel, obs: PolicyObservation,
                   batch: tuple[str, ...], m: int) -> float:
    metrics = [obs.metrics_at(job_id, m) for job_id in batch]
    estimate = perf_model.estimate_group(metrics, m)
    t_group = estimate.t_group_iteration
    if t_group <= 0:
        return 1.0
    return estimate.t_itr_max / t_group


def _phase_offsets(obs: PolicyObservation, batch: tuple[str, ...],
                   m: int) -> tuple[float, ...]:
    """Stagger job k by the COMM demand of the jobs ahead of it."""
    offsets: list[float] = []
    accumulated = 0.0
    for job_id in batch:
        offsets.append(accumulated)
        accumulated += obs.metrics_at(job_id, m).t_net
    return tuple(offsets)


def _cassini_pass(perf_model: PerfModel, max_group_jobs: int,
                  compat_threshold: float,
                  obs: PolicyObservation) -> PolicyDecision:
    starts: list[GroupStart] = []
    free = obs.n_free
    queue = list(obs.queue)
    while queue:
        head = queue[0]
        demand = obs.batch_demand((head,))
        if demand > obs.cluster_size:
            queue.pop(0)
            continue  # unplaceable anywhere; don't wedge the queue
        if demand > free:
            break  # FIFO: the head waits for machines
        queue.pop(0)
        batch = (head,)
        while len(batch) < max_group_jobs and queue:
            best: tuple[float, int, int] | None = None
            for index, candidate in enumerate(queue):
                trial = batch + (candidate,)
                trial_demand = obs.batch_demand(trial)
                if trial_demand > free:
                    continue
                compat = _compatibility(perf_model, obs, trial,
                                        trial_demand)
                if compat < compat_threshold:
                    continue
                if best is None or compat > best[0] + _TIE_EPSILON:
                    best = (compat, index, trial_demand)
            if best is None:
                break
            _, index, demand = best
            batch = batch + (queue.pop(index),)
        offsets = _phase_offsets(obs, batch, demand) \
            if len(batch) > 1 else None
        starts.append(GroupStart(batch, demand, start_offsets=offsets))
        free -= demand
    return PolicyDecision(tuple(starts))


def cassini(perf_model: PerfModel, max_group_jobs: int = 4,
            compat_threshold: float = 0.85) -> FunctionPolicy:
    """Phase-offset COMM interleaving over Eq. 1 compatibility."""
    return FunctionPolicy("cassini", partial(
        _cassini_pass, perf_model, max_group_jobs, compat_threshold))
