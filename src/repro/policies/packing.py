"""Synergy-style resource-sensitive packing.

Synergy (OSDI '22) packs jobs onto shared servers by their *sensitivity*
to each resource instead of GPU-proportional shares.  Translated to
Harmony's world: co-locate queued jobs into one group whenever the
co-location raises the group's weighted CPU/network utilization
(Eq. 3 scored via :class:`~repro.core.perfmodel.PerfModel`, CPU
weighted above network exactly as §IV-B2 does) by more than a
configured gain.  Memory awareness comes in through the batch-demand
oracle: a co-located batch's machine demand is floored by the smallest
DoP at which the members' working sets fit, so memory-heavy pairings
price themselves out of the packing score.

The packer walks the queue head-first (FIFO fairness: the head is
never skipped) and greedily accretes later jobs while the marginal
score gain clears ``gain_threshold``.  All tie-breaks follow queue
order — no hash-order iteration anywhere.
"""

from __future__ import annotations

from functools import partial

from repro.core.perfmodel import PerfModel
from repro.policies.base import (
    FunctionPolicy,
    GroupStart,
    PolicyDecision,
    PolicyObservation,
)


def _pack_score(perf_model: PerfModel, obs: PolicyObservation,
                batch: tuple[str, ...], m: int) -> float:
    """Weighted-utilization score of co-locating ``batch`` on ``m``."""
    metrics = [obs.metrics_at(job_id, m) for job_id in batch]
    estimate = perf_model.estimate_group(metrics, m)
    return perf_model.score(estimate.utilization)


def _synergy_pass(perf_model: PerfModel, max_group_jobs: int,
                  gain_threshold: float,
                  obs: PolicyObservation) -> PolicyDecision:
    starts: list[GroupStart] = []
    free = obs.n_free
    queue = list(obs.queue)
    while queue:
        head = queue[0]
        demand = obs.batch_demand((head,))
        if demand > obs.cluster_size:
            # Unplaceable on any cluster state; step over it so the
            # rest of the queue keeps flowing.
            queue.pop(0)
            continue
        if demand > free:
            break  # FIFO: the head waits for machines, everyone waits
        queue.pop(0)
        batch = (head,)
        score = _pack_score(perf_model, obs, batch, demand)
        # Greedy accretion in queue order: each candidate joins when
        # the packed group's weighted utilization (memory floors
        # included via batch_demand) improves by > gain_threshold.
        index = 0
        while len(batch) < max_group_jobs and index < len(queue):
            candidate = queue[index]
            trial = batch + (candidate,)
            trial_demand = obs.batch_demand(trial)
            if trial_demand > free:
                index += 1
                continue
            trial_score = _pack_score(perf_model, obs, trial,
                                      trial_demand)
            if trial_score > score + gain_threshold:
                batch = trial
                demand = trial_demand
                score = trial_score
                queue.pop(index)
            else:
                index += 1
        starts.append(GroupStart(batch, demand))
        free -= demand
    return PolicyDecision(tuple(starts))


def synergy(perf_model: PerfModel, max_group_jobs: int = 4,
            gain_threshold: float = 0.02) -> FunctionPolicy:
    """Resource-sensitive packing scored on the Eq. 3 utilization."""
    return FunctionPolicy("synergy", partial(
        _synergy_pass, perf_model, max_group_jobs, gain_threshold))
