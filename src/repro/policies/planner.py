"""Harmony's Algorithm 1 behind the policy protocols.

Two adapters live here:

* :class:`SchedulerPlanner` — the :class:`PlannerPolicy` the
  :class:`~repro.core.master.HarmonyMaster` plans through.  It simply
  forwards to a :class:`~repro.core.scheduler.HarmonyScheduler`, making
  the master's observe→plan step an injectable seam (the §V-F oracle
  and any future planner plug in here without subclassing the master).
* :class:`HarmonyPlanPolicy` — Algorithm 1 as a *queue* policy: a
  one-shot grouping over the queued jobs using exact cost-model
  metrics.  This is Harmony's grouping without profiling or dynamic
  regrouping — the "harmony-static" competitor of the tournament,
  isolating how much of Harmony's win comes from the grouping math
  versus from the runtime adaptation loop.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol

from repro.core.profiler import JobMetrics
from repro.core.scheduler import ORDERING_DOP, SchedulePlan
from repro.policies.base import (
    GroupStart,
    PolicyDecision,
    PolicyObservation,
)


class PlannerPolicy(Protocol):
    """Observe profiled metrics + a machine budget, emit a plan."""

    def plan(self, jobs: Sequence[JobMetrics],
             total_machines: int) -> SchedulePlan | None: ...


class SchedulerPlanner:
    """The default planner: Algorithm 1 via a ``HarmonyScheduler``."""

    def __init__(self, scheduler):
        self.scheduler = scheduler

    def plan(self, jobs: Sequence[JobMetrics],
             total_machines: int) -> SchedulePlan | None:
        return self.scheduler.schedule(jobs, total_machines)


class HarmonyPlanPolicy:
    """Algorithm 1 as a queue-admission policy (``harmony-static``).

    On every pass the queued jobs are characterized at the ordering
    DoP, Algorithm 1 plans groups over the free machines, and every
    plan group that fits is started as-is.  Jobs the plan leaves out
    stay queued for the next pass (when completions free machines).
    """

    name = "harmony-static"

    def __init__(self, scheduler_factory):
        #: Called as ``scheduler_factory(memory_floor)`` on first use:
        #: the memory-floor oracle only exists once the master is
        #: running, so construction is deferred to the first decide.
        self._scheduler_factory = scheduler_factory
        self._scheduler = None

    def decide(self, obs: PolicyObservation) -> PolicyDecision:
        if not obs.queue or obs.n_free < 1:
            return PolicyDecision(())
        if self._scheduler is None:
            self._scheduler = self._scheduler_factory(obs.memory_floor)
        characterize_at = min(ORDERING_DOP, obs.cluster_size)
        pool = []
        for job_id in obs.queue:
            if obs.batch_demand((job_id,)) > obs.cluster_size:
                continue  # unplaceable anywhere; skip, don't wedge
            pool.append(obs.metrics_at(job_id, characterize_at))
        if not pool:
            return PolicyDecision(())
        plan = self._scheduler.schedule(pool, obs.n_free)
        if plan is None:
            return PolicyDecision(())
        starts: list[GroupStart] = []
        free = obs.n_free
        for group in plan.groups:
            if group.n_machines <= free:
                starts.append(GroupStart(group.job_ids,
                                         group.n_machines))
                free -= group.n_machines
        return PolicyDecision(tuple(starts))
