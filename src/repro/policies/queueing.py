"""Queue-order admission policies: packed FIFO and backfill families.

Two families, both built with the ``functools.partial`` factory idiom
(after stmobo's batch-simulator policies, where
``easy_backfill = partial(_backfill_sched, 1)`` and
``conservative_backfill = partial(_backfill_sched, None)``):

* :func:`packed_fifo` — the transcription of the historical
  ``BaselineMaster._pump`` admission scan (FIFO + demand-skip
  backfill, batches of up to ``group_size`` jobs).  The naive and
  isolated baselines are exactly this policy at their legacy
  parameters; the differential tests pin the transcription
  bitwise-equal to the pre-refactor masters.
* :func:`_reservation_backfill` — classic supercomputing backfill
  with *reservations*: a blocked job reserves a start time computed
  from the running groups' predicted releases, and later jobs may only
  jump the queue when doing so provably does not delay any
  reservation.  ``max_reservations=1`` is EASY backfill,
  ``None`` is conservative backfill (every blocked job reserves).
"""

from __future__ import annotations

import math
from functools import partial

from repro.policies.base import (
    FunctionPolicy,
    GroupStart,
    PolicyDecision,
    PolicyObservation,
)

#: Reservation start times closer than this are "not delayed" (float
#: noise from re-accumulating the same release timeline).
_DELAY_TOL = 1e-9


# -- packed FIFO (the legacy baseline scan) --------------------------------


def _packed_fifo_pass(group_size: int, backfill: bool,
                      colocate_only_if_fits: bool,
                      obs: PolicyObservation) -> PolicyDecision:
    """One admission pass of the historical ``BaselineMaster._pump``.

    Every quirk of the original scan is intentional and load-bearing
    for the bitwise-equality pin: the batch slice may be shorter than
    ``group_size`` near the queue's tail; the size loop ``break``s on
    the first batch passing the *static* checks whether or not it fits
    in the free pool; and a blocked head aborts the whole pass when
    backfill is off.
    """
    starts: list[GroupStart] = []
    queue = list(obs.queue)
    free = obs.n_free
    index = 0
    while index < len(queue):
        started = False
        # A batch whose memory floor exceeds the cluster (model caches
        # stack per machine) shrinks until it fits.
        for size in range(group_size, 0, -1):
            batch = tuple(queue[index:index + size])
            wanted = obs.batch_demand(batch)
            if wanted > obs.cluster_size:
                continue
            if (colocate_only_if_fits and size > 1
                    and obs.memory_dominated(batch, wanted)):
                continue  # co-location would be memory-driven
            if wanted <= free:
                del queue[index:index + size]
                starts.append(GroupStart(batch, wanted))
                free -= wanted
                started = True
            break
        if not started:
            if not backfill:
                break  # strict FIFO: head-of-line blocks
            # Backfill: try a later batch.
            index += group_size
    return PolicyDecision(tuple(starts))


def packed_fifo(group_size: int = 1, backfill: bool = True,
                colocate_only_if_fits: bool = False,
                name: str | None = None) -> FunctionPolicy:
    """The legacy baseline admission policy at explicit parameters."""
    if name is None:
        name = (f"packed-fifo(size={group_size}"
                f"{'' if backfill else ', no-backfill'})")
    return FunctionPolicy(name, partial(
        _packed_fifo_pass, group_size, backfill, colocate_only_if_fits))


def fcfs() -> FunctionPolicy:
    """Strict first-come-first-served: single-job groups, a blocked
    head blocks everyone behind it."""
    return FunctionPolicy("fcfs", partial(_packed_fifo_pass, 1, False,
                                          False))


# -- reservation backfill (EASY / conservative / hybrid) --------------------


def _reservation_start_times(now: float, free: int,
                             releases: list[tuple[float, int]],
                             demands: list[int]) -> list[float]:
    """Earliest start per reserved demand, greedily claiming machines.

    Walks the release timeline (sorted by time, then machine count for
    a total order) accumulating freed machines; each reservation in
    queue order claims its machines at the first instant enough are
    available, and holds them from then on.  An unsatisfiable demand
    gets ``inf``.
    """
    events = sorted(releases)
    avail = free
    index = 0
    at = now
    out: list[float] = []
    for demand in demands:
        while avail < demand and index < len(events):
            when, machines = events[index]
            index += 1
            at = max(at, when)
            avail += machines
        if avail >= demand:
            out.append(at)
            avail -= demand
        else:
            out.append(math.inf)
    return out


def _reservation_backfill(max_reservations: int | None,
                          obs: PolicyObservation) -> PolicyDecision:
    """FCFS with backfill against shadow reservations.

    A queued job starts immediately when it fits *and* running it would
    not push back any earlier blocked job's reserved start time
    (checked by re-deriving every reservation's start with the
    candidate's machines held until its predicted completion).  Blocked
    jobs reserve in queue order, up to ``max_reservations`` of them
    (``None`` = unbounded, i.e. conservative backfill).
    """
    starts: list[GroupStart] = []
    free = obs.n_free
    releases = [(group.predicted_release, group.n_machines)
                for group in obs.running()]
    reserved: list[int] = []
    for job_id in obs.queue:
        demand = obs.batch_demand((job_id,))
        if demand > obs.cluster_size:
            # Unplaceable at any cluster state: never let it wedge the
            # queue behind an infinite reservation.
            continue
        runtime_estimate = obs.solo_seconds(job_id, demand)
        can_start = demand <= free
        if can_start and reserved:
            without = _reservation_start_times(obs.now, free, releases,
                                               reserved)
            with_candidate = _reservation_start_times(
                obs.now, free - demand,
                releases + [(obs.now + runtime_estimate, demand)],
                reserved)
            if any(later > earlier + _DELAY_TOL for later, earlier
                   in zip(with_candidate, without, strict=True)):
                can_start = False  # would delay a reservation
        if can_start:
            starts.append(GroupStart((job_id,), demand))
            free -= demand
            releases.append((obs.now + runtime_estimate, demand))
        elif max_reservations is None or len(reserved) < max_reservations:
            reserved.append(demand)
    return PolicyDecision(tuple(starts))


#: EASY backfill: only the head-of-line blocked job holds a reservation.
easy_backfill = partial(_reservation_backfill, 1)

#: Conservative backfill: every blocked job holds a reservation.
conservative_backfill = partial(_reservation_backfill, None)


def hybrid_backfill(max_reservations: int) -> FunctionPolicy:
    """Backfill with a configurable reservation depth (EASY at 1,
    conservative at infinity)."""
    return FunctionPolicy(f"backfill-{max_reservations}",
                          partial(_reservation_backfill,
                                  max_reservations))


def easy() -> FunctionPolicy:
    """FCFS + EASY backfill (one reservation)."""
    return FunctionPolicy("easy", easy_backfill)


def conservative() -> FunctionPolicy:
    """FCFS + conservative backfill (reservations for every blocked
    job)."""
    return FunctionPolicy("conservative", conservative_backfill)
