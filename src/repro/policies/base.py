"""The scheduling-policy protocol: observe the cluster, emit starts.

A :class:`SchedulingPolicy` looks at a :class:`PolicyObservation` — the
queued jobs, the free-machine count, and callbacks into the master's
(memoized) demand/metrics oracles — and returns a
:class:`PolicyDecision`: which queued jobs to start, grouped how, on how
many machines, optionally with per-job phase offsets.  The queue-driven
master (:class:`repro.baselines.base.BaselineMaster`) applies decisions
verbatim and re-asks until a decision makes no progress, so a policy
only ever reasons about one admission pass.

Everything a policy can observe is deterministic: the queue is an
ordered tuple, running groups are sorted by group id, and the metric
oracles are pure functions of the (immutable) job specs.  Policies must
not iterate over sets or dicts of their own making — tie-breaks follow
queue order so outcomes are independent of ``PYTHONHASHSEED``.

The registry (:mod:`repro.policies.registry`) maps policy names to
runtime builders; :mod:`repro.policies.queueing`,
:mod:`repro.policies.packing` and :mod:`repro.policies.interleave`
implement the competitor zoo.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.core.profiler import JobMetrics
from repro.errors import SchedulingError


@dataclass(frozen=True)
class RunningGroupView:
    """A policy's read-only view of one live job group."""

    group_id: str
    job_ids: tuple[str, ...]
    n_machines: int
    #: Predicted time the group releases its machines (Eq. 1 over the
    #: members' remaining iterations) — the backfill reservations' input.
    predicted_release: float


@dataclass(frozen=True)
class GroupStart:
    """One group the policy wants started this pass."""

    job_ids: tuple[str, ...]
    n_machines: int
    #: Per-job start delays in seconds (CASSINI-style phase staggering);
    #: ``None`` means everyone starts immediately.
    start_offsets: tuple[float, ...] | None = None

    def __post_init__(self):
        if not self.job_ids:
            raise SchedulingError("a GroupStart needs at least one job")
        if self.n_machines < 1:
            raise SchedulingError(
                f"group of {list(self.job_ids)} wants "
                f"{self.n_machines} machines")
        if self.start_offsets is not None and \
                len(self.start_offsets) != len(self.job_ids):
            raise SchedulingError(
                f"{len(self.start_offsets)} offsets for "
                f"{len(self.job_ids)} jobs")


@dataclass(frozen=True)
class PolicyDecision:
    """Everything one ``decide()`` pass wants started, in order."""

    starts: tuple[GroupStart, ...] = ()

    @property
    def machines_requested(self) -> int:
        return sum(start.n_machines for start in self.starts)


@dataclass(frozen=True)
class PolicyObservation:
    """Cluster/queue snapshot handed to ``decide()``.

    The callables are bound master methods backed by per-run memo
    caches, so a policy re-asking the same demand twice pays one linear
    scan, not two (the masters' profiling showed memory floors dominate
    baseline wall time).
    """

    now: float
    cluster_size: int
    n_free: int
    #: Queued (not yet started) job ids, in queue order.
    queue: tuple[str, ...]
    #: Machine demand of a (possibly co-located) batch of queued jobs —
    #: compute/communication balance bounded below by the memory floor.
    batch_demand: Callable[[tuple[str, ...]], int]
    #: Smallest DoP at which the batch fits in memory.
    memory_floor: Callable[[tuple[str, ...]], int]
    #: Whether a batch's demand is driven by its memory floor rather
    #: than by compute/communication balance.
    memory_dominated: Callable[[tuple[str, ...], int], bool]
    #: Exact (cost-model) metrics of one job as observed at DoP ``m``.
    metrics_at: Callable[[str, int], JobMetrics]
    #: Iterations the job still has to run.
    remaining_iterations: Callable[[str], int]
    #: Closed-form solo runtime of the job's remaining iterations at
    #: DoP ``m`` (Eq. 1; the backfill family's runtime estimate).
    solo_seconds: Callable[[str, int], float]
    #: Live groups, sorted by group id; computed lazily because only
    #: the reservation-based policies need it.
    running: Callable[[], tuple[RunningGroupView, ...]] = \
        field(default=lambda: ())


@runtime_checkable
class SchedulingPolicy(Protocol):
    """Observe cluster/job metrics, emit a grouping/placement plan."""

    #: Stable identifier used in registries, leaderboards and reports.
    name: str

    def decide(self, obs: PolicyObservation) -> PolicyDecision: ...


@dataclass(frozen=True)
class FunctionPolicy:
    """A :class:`SchedulingPolicy` from a pure ``decide`` function.

    The partner of the ``functools.partial`` factory idiom: policy
    families are written once as
    ``_family(param_a, param_b, observation)`` and instantiated as
    ``FunctionPolicy(name, partial(_family, a, b))``.
    """

    name: str
    decide_fn: Callable[[PolicyObservation], PolicyDecision]

    def decide(self, obs: PolicyObservation) -> PolicyDecision:
        return self.decide_fn(obs)
