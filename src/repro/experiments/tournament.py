"""Policy tournament: every registered scheduler, head to head.

A seeded round-robin over the policy registry
(:mod:`repro.policies.registry`) across arrival patterns x cluster
sizes x simulation engines.  Every cell runs to completion under the
:mod:`repro.check` invariant harness; mean JCT, makespan and
utilization feed per-scenario-normalized leaderboards, and the two
engines' outcomes are compared exactly (the fast path must win time,
never change behaviour).

Runnable standalone or through the CLI::

    PYTHONPATH=src python -m repro tournament --seed 0
    PYTHONPATH=src python -m repro tournament --list-policies
    PYTHONPATH=src python -m repro tournament --seed 0 \\
        --expect benchmarks/baseline_tournament.json

The committed ``benchmarks/baseline_tournament.json`` pins the default
tournament's leaderboard ordering; CI replays it on every push.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
import time
from dataclasses import asdict, dataclass

from repro.check.invariants import InvariantChecker
from repro.config import SimConfig
from repro.errors import SimulationError
from repro.experiments.common import scaled_workload
from repro.policies.registry import available, build_runtime
from repro.workloads.arrivals import (
    batch_arrivals,
    poisson_arrivals,
    with_arrival_times,
)

#: Mean inter-arrival time of the ``poisson`` pattern — 4 minutes, the
#: middle of the paper's 0-8 minute §V-D sweep.
POISSON_MEAN_SECONDS = 240.0


@dataclass(frozen=True)
class TournamentParams:
    """Everything needed to replay a tournament exactly."""

    seed: int = 0
    scale: float = 0.2
    policies: tuple[str, ...] = ()  # empty = every registered policy
    arrivals: tuple[str, ...] = ("batch", "poisson")
    #: Cluster sizes as multipliers of the scaled base cluster (>= 1 so
    #: the largest no-spill job stays placeable everywhere).
    cluster_scales: tuple[float, ...] = (1.0, 1.4)
    engines: tuple[str, ...] = ("fast", "reference")
    poisson_mean_seconds: float = POISSON_MEAN_SECONDS
    check_invariants: bool = True

    def resolved_policies(self) -> tuple[str, ...]:
        if self.policies:
            return self.policies
        return tuple(name for name, _ in available())


@dataclass(frozen=True)
class CellResult:
    """One (policy, arrival, cluster, engine) run."""

    policy: str
    arrival: str
    n_machines: int
    engine: str
    mean_jct: float
    makespan: float
    cpu_utilization: float
    net_utilization: float
    n_finished: int
    n_failed: int
    wall_seconds: float
    violations: tuple[str, ...] = ()

    @property
    def scenario(self) -> tuple[str, int, str]:
        return (self.arrival, self.n_machines, self.engine)


@dataclass(frozen=True)
class LeaderboardRow:
    """One policy's aggregate standing across all scenarios."""

    rank: int
    policy: str
    #: Mean over scenarios of (cell JCT / best JCT in that scenario);
    #: 1.0 = won every scenario.
    jct_score: float
    makespan_score: float
    mean_cpu_utilization: float
    n_failed: int


@dataclass(frozen=True)
class TournamentResult:
    params: TournamentParams
    cells: tuple[CellResult, ...]
    leaderboard: tuple[LeaderboardRow, ...]
    #: (policy, arrival, n_machines) combos whose fast/reference
    #: outcomes were not exactly equal (must stay empty).
    engine_disagreements: tuple[tuple[str, str, int], ...] = ()

    @property
    def n_violations(self) -> int:
        return sum(len(cell.violations) for cell in self.cells)

    def ordering(self) -> tuple[str, ...]:
        return tuple(row.policy for row in self.leaderboard)


def _run_cell(policy: str, arrival: str, workload, n_machines: int,
              engine: str, params: TournamentParams) -> CellResult:
    config = SimConfig(seed=params.seed).with_engine(engine)
    runtime = build_runtime(policy, n_machines, workload, config=config)
    # harmony: allow[DET001] wall_seconds measures real runtime, never simulation state
    t0 = time.perf_counter()
    result = runtime.run()
    # harmony: allow[DET001] wall_seconds measures real runtime, never simulation state
    wall = time.perf_counter() - t0
    violations: tuple[str, ...] = ()
    if params.check_invariants:
        violations = tuple(
            str(v) for v in InvariantChecker().check_runtime(runtime))
    return CellResult(
        policy=policy, arrival=arrival, n_machines=n_machines,
        engine=engine, mean_jct=result.mean_jct,
        makespan=result.makespan,
        cpu_utilization=result.average_utilization("cpu"),
        net_utilization=result.average_utilization("net"),
        n_finished=len(result.finished), n_failed=len(result.failed),
        wall_seconds=wall, violations=violations)


def _leaderboard(cells: tuple[CellResult, ...],
                 policies: tuple[str, ...]) -> tuple[LeaderboardRow, ...]:
    """Per-scenario-normalized standings, best (rank 1) first."""
    scenarios: dict[tuple, list[CellResult]] = {}
    for cell in cells:
        scenarios.setdefault(cell.scenario, []).append(cell)
    jct_norms: dict[str, list[float]] = {p: [] for p in policies}
    mk_norms: dict[str, list[float]] = {p: [] for p in policies}
    cpus: dict[str, list[float]] = {p: [] for p in policies}
    fails: dict[str, int] = {p: 0 for p in policies}
    for members in scenarios.values():
        best_jct = min(c.mean_jct for c in members)
        best_mk = min(c.makespan for c in members)
        for cell in members:
            jct_norms[cell.policy].append(
                cell.mean_jct / best_jct if best_jct > 0 else 1.0)
            mk_norms[cell.policy].append(
                cell.makespan / best_mk if best_mk > 0 else 1.0)
            cpus[cell.policy].append(cell.cpu_utilization)
            fails[cell.policy] += cell.n_failed
    rows = []
    for policy in policies:
        if not jct_norms[policy]:
            continue
        rows.append((
            sum(jct_norms[policy]) / len(jct_norms[policy]),
            policy,
            sum(mk_norms[policy]) / len(mk_norms[policy]),
            sum(cpus[policy]) / len(cpus[policy]),
            fails[policy]))
    # Rank by normalized JCT; ties resolve alphabetically so the
    # ordering is independent of registration and hash order.
    rows.sort(key=lambda r: (r[0], r[1]))
    return tuple(
        LeaderboardRow(rank=i + 1, policy=policy, jct_score=jct,
                       makespan_score=mk, mean_cpu_utilization=cpu,
                       n_failed=failed)
        for i, (jct, policy, mk, cpu, failed) in enumerate(rows))


def _engine_disagreements(cells: tuple[CellResult, ...]) -> \
        tuple[tuple[str, str, int], ...]:
    by_combo: dict[tuple[str, str, int], dict[str, CellResult]] = {}
    for cell in cells:
        combo = (cell.policy, cell.arrival, cell.n_machines)
        by_combo.setdefault(combo, {})[cell.engine] = cell
    bad = []
    for combo, engines in by_combo.items():
        fast, ref = engines.get("fast"), engines.get("reference")
        if fast is None or ref is None:
            continue
        # harmony: allow[DET006] exact cross-engine equality is the property under test
        if fast.mean_jct != ref.mean_jct \
                or fast.makespan != ref.makespan:  # harmony: allow[DET006] exact cross-engine equality is the property under test
            bad.append(combo)
    return tuple(sorted(bad))


def run(params: TournamentParams = TournamentParams()) -> \
        TournamentResult:
    """Run the full round-robin and build the leaderboards."""
    base_jobs, base_machines = scaled_workload(scale=params.scale,
                                               seed=2021 + params.seed)
    policies = params.resolved_policies()
    workloads = {}
    for arrival in params.arrivals:
        if arrival == "batch":
            times = batch_arrivals(len(base_jobs))
        elif arrival == "poisson":
            times = poisson_arrivals(len(base_jobs),
                                     params.poisson_mean_seconds,
                                     seed=params.seed)
        else:
            raise SimulationError(f"unknown arrival pattern {arrival!r}")
        workloads[arrival] = with_arrival_times(base_jobs, times)
    clusters = tuple(max(20, round(base_machines * s))
                     for s in params.cluster_scales)
    cells = []
    for policy in policies:
        for arrival in params.arrivals:
            for n_machines in clusters:
                for engine in params.engines:
                    cells.append(_run_cell(
                        policy, arrival, workloads[arrival],
                        n_machines, engine, params))
    cells = tuple(cells)
    return TournamentResult(
        params=params, cells=cells,
        leaderboard=_leaderboard(cells, policies),
        engine_disagreements=_engine_disagreements(cells))


# -- reporting / persistence --------------------------------------------------

def report(result: TournamentResult) -> str:
    p = result.params
    lines = [
        f"policy tournament: seed={p.seed} scale={p.scale} "
        f"arrivals={','.join(p.arrivals)} "
        f"clusters={','.join(str(s) for s in p.cluster_scales)} "
        f"engines={','.join(p.engines)} "
        f"({len(result.cells)} runs)",
        f"{'rank':>4} {'policy':15s} {'jct score':>10} "
        f"{'makespan':>10} {'cpu util':>9} {'failed':>7}",
    ]
    for row in result.leaderboard:
        lines.append(
            f"{row.rank:>4} {row.policy:15s} {row.jct_score:>10.4f} "
            f"{row.makespan_score:>10.4f} "
            f"{row.mean_cpu_utilization:>9.1%} {row.n_failed:>7}")
    lines.append(
        f"invariant violations: {result.n_violations}; engine "
        f"disagreements: {len(result.engine_disagreements)}")
    return "\n".join(lines)


def one_line(result: TournamentResult) -> str:
    """The leaderboard as one log line (for CI job summaries)."""
    order = " > ".join(result.ordering())
    return (f"tournament[seed={result.params.seed}]: {order} "
            f"(violations={result.n_violations}, "
            f"engine_disagreements={len(result.engine_disagreements)})")


def to_json(result: TournamentResult) -> dict:
    return {
        "params": asdict(result.params),
        "ordering": list(result.ordering()),
        "leaderboard": [asdict(row) for row in result.leaderboard],
        "cells": [asdict(cell) for cell in result.cells],
        "engine_disagreements": [list(c) for c in
                                 result.engine_disagreements],
        "n_violations": result.n_violations,
    }


def write_csv(result: TournamentResult, path: str) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["rank", "policy", "jct_score",
                         "makespan_score", "mean_cpu_utilization",
                         "n_failed"])
        for row in result.leaderboard:
            writer.writerow([row.rank, row.policy,
                             f"{row.jct_score:.6f}",
                             f"{row.makespan_score:.6f}",
                             f"{row.mean_cpu_utilization:.6f}",
                             row.n_failed])
        writer.writerow([])
        writer.writerow(["policy", "arrival", "n_machines", "engine",
                         "mean_jct", "makespan", "cpu_utilization",
                         "net_utilization", "n_finished", "n_failed"])
        for cell in result.cells:
            writer.writerow([cell.policy, cell.arrival,
                             cell.n_machines, cell.engine,
                             f"{cell.mean_jct:.6f}",
                             f"{cell.makespan:.6f}",
                             f"{cell.cpu_utilization:.6f}",
                             f"{cell.net_utilization:.6f}",
                             cell.n_finished, cell.n_failed])


def _params_from_expect(payload: dict) -> TournamentParams:
    raw = dict(payload["params"])
    for key in ("policies", "arrivals", "engines"):
        raw[key] = tuple(raw[key])
    raw["cluster_scales"] = tuple(raw["cluster_scales"])
    return TournamentParams(**raw)


def _check_expect(result: TournamentResult, path: str) -> list[str]:
    """Compare a result's ordering against a committed expect file."""
    with open(path) as handle:
        payload = json.load(handle)
    problems = []
    expected = tuple(payload["ordering"])
    if result.ordering() != expected:
        problems.append(
            f"leaderboard ordering changed: expected "
            f"{' > '.join(expected)}, got "
            f"{' > '.join(result.ordering())}")
    return problems


def _sanity_problems(result: TournamentResult) -> list[str]:
    """The invariants any healthy tournament must satisfy."""
    problems = [f"invariant violation in {cell.policy}/{cell.arrival}/"
                f"{cell.n_machines}/{cell.engine}: {v}"
                for cell in result.cells for v in cell.violations]
    for combo in result.engine_disagreements:
        problems.append(
            f"fast/reference outcomes differ for {combo}")
    scores = {row.policy: row.jct_score for row in result.leaderboard}
    if "harmony" in scores and "naive" in scores \
            and scores["harmony"] > scores["naive"]:
        problems.append(
            f"harmony mean-JCT score {scores['harmony']:.4f} worse "
            f"than naive {scores['naive']:.4f}")
    return problems


# -- CLI ----------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro tournament",
        description="Round-robin scheduler tournament over the policy "
                    "registry.")
    defaults = TournamentParams()
    parser.add_argument("--seed", type=int, default=defaults.seed)
    parser.add_argument("--scale", type=float, default=defaults.scale,
                        help="workload/cluster scale in (0, 1]")
    parser.add_argument("--policies", default=None,
                        help="comma-separated policy names "
                             "(default: all registered)")
    parser.add_argument("--arrivals", default=",".join(defaults.arrivals),
                        help="comma-separated subset of batch,poisson")
    parser.add_argument("--clusters",
                        default=",".join(str(s) for s in
                                         defaults.cluster_scales),
                        help="comma-separated cluster-size multipliers")
    parser.add_argument("--engines", default=",".join(defaults.engines),
                        help="comma-separated subset of fast,reference")
    parser.add_argument("--poisson-mean", type=float,
                        default=defaults.poisson_mean_seconds,
                        help="poisson mean inter-arrival seconds")
    parser.add_argument("--no-invariants", action="store_true",
                        help="skip the repro.check invariant harness")
    parser.add_argument("--output", default=None,
                        help="write the full result as JSON here")
    parser.add_argument("--csv", default=None,
                        help="write leaderboard + cells as CSV here")
    parser.add_argument("--expect", default=None,
                        help="JSON expect file; exit 1 unless this "
                             "run reproduces its leaderboard ordering")
    parser.add_argument("--assert-sanity", action="store_true",
                        help="exit 1 on invariant violations, engine "
                             "disagreement, or harmony losing to naive")
    parser.add_argument("--list-policies", action="store_true")
    args = parser.parse_args(argv)

    if args.list_policies:
        for name, summary in available():
            print(f"  {name:15s} {summary}")
        return 0

    params = TournamentParams(
        seed=args.seed, scale=args.scale,
        policies=(tuple(args.policies.split(","))
                  if args.policies else ()),
        arrivals=tuple(args.arrivals.split(",")),
        cluster_scales=tuple(float(s)
                             for s in args.clusters.split(",")),
        engines=tuple(args.engines.split(",")),
        poisson_mean_seconds=args.poisson_mean,
        check_invariants=not args.no_invariants)
    if args.expect is not None:
        # Replays must compare like with like: the expect file's
        # parameters win over the defaults (explicit flags aside, the
        # committed baseline defines the experiment).
        with open(args.expect) as handle:
            expect_params = _params_from_expect(json.load(handle))
        if params == TournamentParams(seed=args.seed):
            params = expect_params
    result = run(params)
    print(report(result))
    print(one_line(result))

    if args.output is not None:
        with open(args.output, "w") as handle:
            json.dump(to_json(result), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    if args.csv is not None:
        write_csv(result, args.csv)
        print(f"wrote {args.csv}")

    problems = []
    if args.expect is not None:
        problems.extend(_check_expect(result, args.expect))
    if args.assert_sanity:
        problems.extend(_sanity_problems(result))
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(main())
