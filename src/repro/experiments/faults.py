"""Fault-tolerance experiment: Harmony under injected machine faults.

§VI of the paper sketches fault tolerance as "checkpointing (per
epoch) and restart".  This driver measures that story end to end with
the :mod:`repro.faults` subsystem: a seeded
:class:`~repro.faults.plan.FaultPlan` injects machine crashes,
stragglers (machine slowdowns), and transient network drops into an
otherwise identical run, the heartbeat
:class:`~repro.faults.monitor.HealthMonitor` detects dead machines,
and the master checkpoints, regroups the displaced jobs onto the
survivors, and resumes them.

The exhibit compares the faulty run against the fault-free baseline:

* makespan / mean-JCT inflation (how much the faults cost),
* every job still finishes (faults cost time, never correctness),
* recovery accounting — detection latency, per-crash recovery time,
  iterations rolled back, and the re-run work they imply.

Same seed ⇒ same fault timeline ⇒ identical results, so the exhibit
is exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.core.runtime import HarmonyRuntime, RunResult
from repro.experiments.common import scaled_workload
from repro.faults.plan import FaultPlan
from repro.metrics.faults import FaultSummary
from repro.metrics.reporting import format_table


@dataclass
class FaultsResult:
    baseline: RunResult
    faulty: RunResult
    plan: FaultPlan
    fault_summary: FaultSummary

    @property
    def makespan_inflation(self) -> float:
        return self.faulty.makespan / self.baseline.makespan

    @property
    def jct_inflation(self) -> float:
        return self.faulty.mean_jct / self.baseline.mean_jct


def run(scale: float = 0.5, seed: int = 2021,
        crash_rate_per_hour: float = 0.5,
        slowdown_rate_per_hour: float = 1.0,
        drop_rate_per_hour: float = 2.0,
        crash_downtime_seconds: float = 1800.0,
        config: SimConfig = DEFAULT_SIM_CONFIG) -> FaultsResult:
    """Run the experiment; see the module docstring for
    the paper exhibit it reproduces.

    The fault plan's horizon is the fault-free makespan, so the rates
    are "faults per cluster-hour of useful work" regardless of scale.
    """
    workload, n_machines = scaled_workload(scale, seed)

    baseline = HarmonyRuntime(n_machines, workload, config=config).run()

    plan = FaultPlan.generate(
        seed=seed, n_machines=n_machines,
        horizon_seconds=baseline.makespan,
        crash_rate_per_hour=crash_rate_per_hour,
        slowdown_rate_per_hour=slowdown_rate_per_hour,
        drop_rate_per_hour=drop_rate_per_hour,
        crash_downtime_seconds=crash_downtime_seconds)
    faulty = HarmonyRuntime(n_machines, workload, config=config,
                            fault_plan=plan,
                            scheduler_name="harmony-faults").run()

    return FaultsResult(baseline=baseline, faulty=faulty, plan=plan,
                        fault_summary=faulty.fault_log.summary())


def report(result: FaultsResult) -> str:
    """Render the paper-style rows for this exhibit."""
    rows = []
    for label, run_result in (("fault-free", result.baseline),
                              ("with fault plan", result.faulty)):
        rows.append((label,
                     f"{run_result.makespan / 60:.0f}",
                     f"{run_result.mean_jct / 60:.0f}",
                     f"{len(run_result.finished)}",
                     f"{run_result.average_utilization('cpu'):.1%}"))
    summary = result.fault_summary
    lines = [format_table(
        ["configuration", "makespan (min)", "mean JCT (min)",
         "jobs finished", "CPU util"], rows,
        title="Fault tolerance — crash/straggler/drop injection "
              "(heartbeat detection, checkpoint-regroup-resume)")]
    lines.append(result.plan.describe())
    lines.append(
        f"makespan inflation {result.makespan_inflation:.2f}x, "
        f"mean-JCT inflation {result.jct_inflation:.2f}x")
    lines.append(
        f"recovery: detection {summary.mean_detection_seconds:.0f}s "
        f"mean, recovery {summary.mean_recovery_seconds / 60:.1f} min "
        f"mean / {summary.max_recovery_seconds / 60:.1f} min max, "
        f"{summary.lost_iterations} iterations rolled back "
        f"({summary.rerun_work_seconds / 60:.1f} min re-run work), "
        f"{summary.unrecovered_jobs} jobs unrecovered")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(report(run()))
