"""Fig. 14 + §V-F: Harmony's greedy scheduler vs exhaustive search.

The Oracle enumerates every grouping ("measuring all possible search
spaces") and is intractable beyond a handful of jobs — the paper quotes
~10 hours at 4K jobs vs 13.8 minutes for their 80-job runs, so the
comparison here runs on a scaled-down pool, as DESIGN.md documents.
Paper: Harmony lands within ~2% of the oracle on utilization, JCT, and
makespan, while scheduling orders of magnitude faster.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.oracle import OracleScheduler
from repro.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.core.runtime import HarmonyRuntime, RunResult
from repro.core.scheduler import HarmonyScheduler
from repro.metrics.reporting import format_table
from repro.workloads.generator import WorkloadGenerator


@dataclass
class Fig14Result:
    harmony: RunResult
    oracle: RunResult
    harmony_wall_seconds: float
    oracle_wall_seconds: float

    @property
    def jct_gap(self) -> float:
        """Relative JCT difference (positive = Harmony slower)."""
        return (self.harmony.mean_jct - self.oracle.mean_jct) \
            / self.oracle.mean_jct

    @property
    def makespan_gap(self) -> float:
        return (self.harmony.makespan - self.oracle.makespan) \
            / self.oracle.makespan

    @property
    def utilization_gap(self) -> float:
        oracle_util = self.oracle.average_utilization("cpu")
        return (oracle_util - self.harmony.average_utilization("cpu")) \
            / max(oracle_util, 1e-9)


def run(n_jobs: int = 8, n_machines: int = 24, seed: int = 2021,
        config: SimConfig = DEFAULT_SIM_CONFIG) -> Fig14Result:
    """Run the experiment; see the module docstring for
    the paper exhibit it reproduces."""
    workload = WorkloadGenerator(seed).base_workload(
        hyper_params_per_pair=1)[:n_jobs]

    # harmony: allow[DET001] the measured quantity is real scheduler wall time
    started = time.perf_counter()
    harmony = HarmonyRuntime(n_machines, workload, config=config,
                             scheduler_factory=HarmonyScheduler,
                             scheduler_name="harmony").run()
    # harmony: allow[DET001] the measured quantity is real scheduler wall time
    harmony_wall = time.perf_counter() - started

    # harmony: allow[DET001] the measured quantity is real scheduler wall time
    started = time.perf_counter()
    oracle = HarmonyRuntime(n_machines, workload, config=config,
                            scheduler_factory=OracleScheduler,
                            scheduler_name="oracle").run()
    # harmony: allow[DET001] the measured quantity is real scheduler wall time
    oracle_wall = time.perf_counter() - started

    return Fig14Result(harmony=harmony, oracle=oracle,
                       harmony_wall_seconds=harmony_wall,
                       oracle_wall_seconds=oracle_wall)


def report(result: Fig14Result) -> str:
    """Render the paper-style rows for this exhibit."""
    rows = []
    for label, run_result, wall in (
            ("Oracle", result.oracle, result.oracle_wall_seconds),
            ("Harmony", result.harmony, result.harmony_wall_seconds)):
        rows.append((label,
                     f"{run_result.average_utilization('cpu'):.1%}",
                     f"{run_result.average_utilization('net'):.1%}",
                     f"{run_result.mean_jct / 60:.0f}",
                     f"{run_result.makespan / 60:.0f}",
                     f"{wall:.2f}"))
    lines = [format_table(
        ["scheduler", "CPU util", "net util", "JCT (min)",
         "makespan (min)", "wall (s)"], rows,
        title="Fig. 14 — Harmony vs exhaustive search "
              "(paper: within ~2% on every metric)")]
    lines.append(f"gaps: JCT {result.jct_gap:+.1%}, makespan "
                 f"{result.makespan_gap:+.1%}, CPU util "
                 f"{result.utilization_gap:+.1%}")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(report(run()))
