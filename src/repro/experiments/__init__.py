"""Experiment drivers: one module per table/figure of the paper.

Every driver exposes a ``run(...)`` function returning a structured
result plus a ``report(result)`` renderer that prints the same
rows/series the paper shows.  DESIGN.md maps each driver to its paper
exhibit; EXPERIMENTS.md records paper-vs-measured numbers.
"""

from repro.experiments import (
    ablation,
    common,
    design_ablations,
    extensions,
    faults,
    fig02_single_job,
    fig03_dop_sweep,
    fig04_naive_colocation,
    fig09_workload_cdf,
    fig10_main,
    fig11_util_timeline,
    fig12_group_distributions,
    fig13_model_accuracy,
    fig14_oracle,
    granularity_validation,
    local_validation,
    reloading,
    scalability,
    sensitivity_arrival,
    sensitivity_ratio,
    tournament,
    trace_demo,
)

__all__ = [
    "ablation",
    "common",
    "design_ablations",
    "extensions",
    "faults",
    "fig02_single_job",
    "fig03_dop_sweep",
    "fig04_naive_colocation",
    "fig09_workload_cdf",
    "fig10_main",
    "fig11_util_timeline",
    "fig12_group_distributions",
    "fig13_model_accuracy",
    "fig14_oracle",
    "granularity_validation",
    "local_validation",
    "reloading",
    "scalability",
    "sensitivity_arrival",
    "sensitivity_ratio",
    "tournament",
    "trace_demo",
]
