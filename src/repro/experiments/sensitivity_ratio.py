"""§V-D: workload sensitivity to resource-usage ratios.

The top/bottom 60 jobs by computation ratio form computation- and
communication-heavy workloads.  Paper: makespan speedups stay ~1.57-
1.58x with high utilization for both; JCT speedups differ (2.31x
comp-heavy vs 1.83x comm-heavy) because Harmony picks larger DoPs for
computation-heavy jobs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.isolated import IsolatedRuntime
from repro.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.core.runtime import HarmonyRuntime
from repro.experiments.common import scaled_workload
from repro.metrics.reporting import format_table
from repro.workloads.generator import (
    comm_intensive_subset,
    comp_intensive_subset,
)


@dataclass
class RatioRow:
    label: str
    jct_speedup: float
    makespan_speedup: float
    cpu_utilization: float
    net_utilization: float
    median_dop: float


@dataclass
class SensitivityRatioResult:
    rows: list[RatioRow]

    def row(self, label: str) -> RatioRow:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(label)


def _measure(label: str, workload, n_machines: int,
             config: SimConfig) -> RatioRow:
    isolated = IsolatedRuntime(n_machines, workload, config=config).run()
    harmony = HarmonyRuntime(n_machines, workload, config=config).run()
    dops = [m for _, m, _ in harmony.group_shape_log]
    return RatioRow(
        label=label,
        jct_speedup=isolated.mean_jct / harmony.mean_jct,
        makespan_speedup=isolated.makespan / harmony.makespan,
        cpu_utilization=harmony.average_utilization("cpu"),
        net_utilization=harmony.average_utilization("net"),
        median_dop=float(np.median(dops)) if dops else 0.0)


def run(scale: float = 1.0, seed: int = 2021,
        config: SimConfig = DEFAULT_SIM_CONFIG,
        subset_fraction: float = 0.75) -> SensitivityRatioResult:
    """Run the experiment; see the module docstring for
    the paper exhibit it reproduces."""
    workload, n_machines = scaled_workload(scale, seed)
    subset_size = max(1, int(len(workload) * subset_fraction))
    rows = [
        _measure("base", workload, n_machines, config),
        _measure("comp-intensive",
                 comp_intensive_subset(workload, subset_size),
                 n_machines, config),
        _measure("comm-intensive",
                 comm_intensive_subset(workload, subset_size),
                 n_machines, config),
    ]
    return SensitivityRatioResult(rows=rows)


def report(result: SensitivityRatioResult) -> str:
    """Render the paper-style rows for this exhibit."""
    return format_table(
        ["workload", "JCT speedup", "makespan speedup", "CPU util",
         "net util", "median DoP"],
        [(r.label, f"{r.jct_speedup:.2f}", f"{r.makespan_speedup:.2f}",
          f"{r.cpu_utilization:.1%}", f"{r.net_utilization:.1%}",
          f"{r.median_dop:.0f}") for r in result.rows],
        title="§V-D ratio sensitivity (paper: comp 1.58x makespan / "
              "2.31x JCT with larger DoPs; comm 1.57x / 1.83x with "
              "smaller DoPs)")


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(report(run()))
