"""§V-F: performance and scalability of the scheduling algorithm.

"Harmony can schedule 8K jobs to 10K machines within 5 seconds ... the
exhaustive search algorithm for 4K jobs on 10K machines takes about 10
hours."  We time Algorithm 1 on growing pools and measure the oracle's
partition-space blow-up directly on small pools (Bell-number growth
makes the 10-hour figure obvious by extrapolation).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.oracle import OracleScheduler
from repro.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.core.profiler import Profiler
from repro.core.scheduler import HarmonyScheduler
from repro.metrics.reporting import format_table
from repro.workloads.costmodel import CostModel
from repro.workloads.generator import WorkloadGenerator


@dataclass
class ScaleRow:
    n_jobs: int
    n_machines: int
    seconds: float
    jobs_scheduled: int


@dataclass
class OracleRow:
    n_jobs: int
    seconds: float
    partitions_searched: int


@dataclass
class ScalabilityResult:
    harmony_rows: list[ScaleRow]
    oracle_rows: list[OracleRow]

    @property
    def largest_harmony_seconds(self) -> float:
        return self.harmony_rows[-1].seconds


def _metrics_for(n_jobs: int, seed: int) -> list:
    jobs = WorkloadGenerator(seed).sized_workload(n_jobs)
    cost_model = CostModel()
    profiler = Profiler()
    for job in jobs:
        profile = cost_model.profile(job, 16)
        profiler.record_iteration(job.job_id, profile.t_comp,
                                  profile.t_comm, 16)
    return [profiler.get(job.job_id) for job in jobs]


def run(sizes: tuple[tuple[int, int], ...] = ((80, 100), (1000, 2000),
                                              (8000, 10_000)),
        oracle_sizes: tuple[int, ...] = (4, 6, 8),
        seed: int = 2021,
        config: SimConfig = DEFAULT_SIM_CONFIG) -> ScalabilityResult:
    harmony_rows = []
    for n_jobs, n_machines in sizes:
        metrics = _metrics_for(n_jobs, seed)
        scheduler = HarmonyScheduler(config=config.scheduler)
        # harmony: allow[DET001] scalability exhibit measures real scheduling wall time
        started = time.perf_counter()
        plan = scheduler.schedule(metrics, n_machines)
        # harmony: allow[DET001] scalability exhibit measures real scheduling wall time
        elapsed = time.perf_counter() - started
        harmony_rows.append(ScaleRow(
            n_jobs=n_jobs, n_machines=n_machines, seconds=elapsed,
            jobs_scheduled=len(plan.scheduled_job_ids) if plan else 0))

    oracle_rows = []
    for n_jobs in oracle_sizes:
        metrics = _metrics_for(n_jobs, seed)
        oracle = OracleScheduler(config=config.scheduler)
        # harmony: allow[DET001] scalability exhibit measures real scheduling wall time
        started = time.perf_counter()
        oracle.schedule(metrics, 32)
        # harmony: allow[DET001] scalability exhibit measures real scheduling wall time
        elapsed = time.perf_counter() - started
        oracle_rows.append(OracleRow(
            n_jobs=n_jobs, seconds=elapsed,
            partitions_searched=oracle.last_search_size))
    return ScalabilityResult(harmony_rows=harmony_rows,
                             oracle_rows=oracle_rows)


def report(result: ScalabilityResult) -> str:
    """Render the paper-style rows for this exhibit."""
    lines = [format_table(
        ["jobs", "machines", "schedule() seconds", "jobs placed"],
        [(r.n_jobs, r.n_machines, f"{r.seconds:.2f}", r.jobs_scheduled)
         for r in result.harmony_rows],
        title="§V-F — Harmony scheduling time "
              "(paper: 8K jobs / 10K machines within 5 s)")]
    lines.append(format_table(
        ["jobs", "oracle seconds", "partitions searched"],
        [(r.n_jobs, f"{r.seconds:.3f}", r.partitions_searched)
         for r in result.oracle_rows],
        title="Oracle exhaustive search (Bell-number growth; the paper "
              "reports ~10 h at 4K jobs)"))
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(report(run()))
