"""§V-F: performance and scalability of the scheduling algorithm.

"Harmony can schedule 8K jobs to 10K machines within 5 seconds ... the
exhaustive search algorithm for 4K jobs on 10K machines takes about 10
hours."  We time Algorithm 1 on growing pools and measure the oracle's
partition-space blow-up directly on small pools (Bell-number growth
makes the 10-hour figure obvious by extrapolation).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.baselines.oracle import OracleScheduler
from repro.config import DEFAULT_SIM_CONFIG, ShardConfig, SimConfig
from repro.core.profiler import Profiler
from repro.core.scheduler import HarmonyScheduler
from repro.metrics.reporting import format_table
from repro.shard.scheduler import ShardedScheduler
from repro.workloads.costmodel import CostModel
from repro.workloads.generator import WorkloadGenerator


@dataclass
class ScaleRow:
    n_jobs: int
    n_machines: int
    seconds: float
    jobs_scheduled: int


@dataclass
class OracleRow:
    n_jobs: int
    seconds: float
    partitions_searched: int


@dataclass
class ScalabilityResult:
    harmony_rows: list[ScaleRow]
    oracle_rows: list[OracleRow]

    @property
    def largest_harmony_seconds(self) -> float:
        """Seconds of the largest Harmony row, or 0.0 for an empty
        sweep (``run(sizes=())`` is a legitimate oracle-only call)."""
        if not self.harmony_rows:
            return 0.0
        return self.harmony_rows[-1].seconds


def _metrics_for(n_jobs: int, seed: int) -> list:
    jobs = WorkloadGenerator(seed).sized_workload(n_jobs)
    cost_model = CostModel()
    profiler = Profiler()
    for job in jobs:
        profile = cost_model.profile(job, 16)
        profiler.record_iteration(job.job_id, profile.t_comp,
                                  profile.t_comm, 16)
    return [profiler.get(job.job_id) for job in jobs]


def run(sizes: tuple[tuple[int, int], ...] = ((80, 100), (1000, 2000),
                                              (8000, 10_000)),
        oracle_sizes: tuple[int, ...] = (4, 6, 8),
        seed: int = 2021,
        config: SimConfig = DEFAULT_SIM_CONFIG) -> ScalabilityResult:
    harmony_rows = []
    for n_jobs, n_machines in sizes:
        metrics = _metrics_for(n_jobs, seed)
        scheduler = HarmonyScheduler(config=config.scheduler)
        # harmony: allow[DET001] scalability exhibit measures real scheduling wall time
        started = time.perf_counter()
        plan = scheduler.schedule(metrics, n_machines)
        # harmony: allow[DET001] scalability exhibit measures real scheduling wall time
        elapsed = time.perf_counter() - started
        harmony_rows.append(ScaleRow(
            n_jobs=n_jobs, n_machines=n_machines, seconds=elapsed,
            jobs_scheduled=len(plan.scheduled_job_ids) if plan else 0))

    oracle_rows = []
    for n_jobs in oracle_sizes:
        metrics = _metrics_for(n_jobs, seed)
        oracle = OracleScheduler(config=config.scheduler)
        # harmony: allow[DET001] scalability exhibit measures real scheduling wall time
        started = time.perf_counter()
        oracle.schedule(metrics, 32)
        # harmony: allow[DET001] scalability exhibit measures real scheduling wall time
        elapsed = time.perf_counter() - started
        oracle_rows.append(OracleRow(
            n_jobs=n_jobs, seconds=elapsed,
            partitions_searched=oracle.last_search_size))
    return ScalabilityResult(harmony_rows=harmony_rows,
                             oracle_rows=oracle_rows)


@dataclass
class ShardRow:
    """One (cell count × cluster size) measurement of the sharded sweep."""

    n_cells: int
    n_jobs: int
    n_machines: int
    #: One full schedule of the whole pool from scratch.
    cold_seconds: float
    #: Total over the online churn steps that follow (each = one job
    #: arrival + one profile republish of a running job).
    churn_seconds: float
    jobs_scheduled: int
    score: float

    @property
    def total_seconds(self) -> float:
        return self.cold_seconds + self.churn_seconds


@dataclass
class ShardScalabilityResult:
    rows: list[ShardRow]
    churn_steps: int

    def rows_at(self, n_jobs: int, n_machines: int) -> list[ShardRow]:
        return [row for row in self.rows
                if row.n_jobs == n_jobs and row.n_machines == n_machines]

    @property
    def speedup_at_largest(self) -> float:
        """Unsharded-total / best-sharded-total at the largest size.

        0.0 when the sweep has no size with both an unsharded
        (``n_cells == 1``) and a sharded row — mirrors the empty-sweep
        guard on :attr:`ScalabilityResult.largest_harmony_seconds`.
        """
        if not self.rows:
            return 0.0
        largest = max((row.n_jobs, row.n_machines) for row in self.rows)
        rows = self.rows_at(*largest)
        unsharded = [row for row in rows if row.n_cells == 1]
        sharded = [row for row in rows if row.n_cells > 1]
        if not unsharded or not sharded:
            return 0.0
        return unsharded[0].total_seconds \
            / min(row.total_seconds for row in sharded)


def run_sharded(
        sizes: tuple[tuple[int, int], ...] = ((1000, 2000),
                                              (8000, 10_000)),
        cells: tuple[int, ...] = (1, 8),
        churn_steps: int = 16,
        max_workers: int = 1,
        seed: int = 2021,
        config: SimConfig = DEFAULT_SIM_CONFIG) -> ShardScalabilityResult:
    """The cells × cluster-size sweep in the online-churn setting.

    For each size and cell count: one cold full schedule of ``n_jobs``,
    then ``churn_steps`` online steps, each a job arrival *plus* a
    profile republish (an EMA update replacing one running job's
    :class:`~repro.core.profiler.JobMetrics`) — the steady-state shape
    of a live master, whose profiler republishes running jobs
    constantly.  A republish of a scheduled job invalidates the
    unsharded scheduler's plan cache from that job's admission position
    onward, forcing most of Algorithm 1's prefix loop to re-run;
    sharded, it dirties exactly one cell while every other cell answers
    from its memoized plan.  That per-decision asymmetry is the point
    of the exhibit (and what ``benchmarks/bench_scalability.py`` pins a
    >= 3x floor on at the largest size).

    Each scheduler churns its *own* scheduled jobs (round-robin over
    the cold plan's placements in pool order), since only running jobs
    get profiled — deterministic per configuration.
    """
    rows = []
    for n_jobs, n_machines in sizes:
        metrics = _metrics_for(n_jobs + churn_steps, seed)
        pool0, newcomers = metrics[:n_jobs], metrics[n_jobs:]
        for n_cells in cells:
            scheduler = ShardedScheduler(
                config=config.scheduler,
                shard=ShardConfig(n_cells=n_cells,
                                  max_workers=max_workers))
            pool = list(pool0)
            # harmony: allow[DET001] scalability exhibit measures real scheduling wall time
            started = time.perf_counter()
            plan = scheduler.schedule(pool, n_machines)
            # harmony: allow[DET001] scalability exhibit measures real scheduling wall time
            cold = time.perf_counter() - started
            placed = plan.scheduled_job_ids if plan else frozenset()
            running = [index for index, job in enumerate(pool)
                       if job.job_id in placed]
            # harmony: allow[DET001] scalability exhibit measures real scheduling wall time
            started = time.perf_counter()
            for step in range(churn_steps):
                pool.append(newcomers[step])
                scheduler.schedule(pool, n_machines)
                if running:
                    index = running[(step * 997) % len(running)]
                    job = pool[index]
                    pool[index] = replace(
                        job, cpu_work=job.cpu_work * 1.01,
                        samples=job.samples + 1)
                plan = scheduler.schedule(pool, n_machines)
            # harmony: allow[DET001] scalability exhibit measures real scheduling wall time
            churn = time.perf_counter() - started
            rows.append(ShardRow(
                n_cells=n_cells, n_jobs=n_jobs, n_machines=n_machines,
                cold_seconds=cold, churn_seconds=churn,
                jobs_scheduled=(len(plan.scheduled_job_ids)
                                if plan else 0),
                score=plan.score if plan else 0.0))
    return ShardScalabilityResult(rows=rows, churn_steps=churn_steps)


def report_sharded(result: ShardScalabilityResult) -> str:
    """Render the sharded sweep table."""
    return format_table(
        ["cells", "jobs", "machines", "cold s",
         f"{result.churn_steps} churn steps s", "total s", "placed",
         "score"],
        [(row.n_cells, row.n_jobs, row.n_machines,
          f"{row.cold_seconds:.2f}", f"{row.churn_seconds:.2f}",
          f"{row.total_seconds:.2f}", row.jobs_scheduled,
          f"{row.score:.3f}")
         for row in result.rows],
        title="Sharded scheduling — cells x cluster size, online churn "
              "(arrival + profile republish per step; ROADMAP scale "
              "jump past the paper's §V-F table)")


def report(result: ScalabilityResult) -> str:
    """Render the paper-style rows for this exhibit."""
    lines = [format_table(
        ["jobs", "machines", "schedule() seconds", "jobs placed"],
        [(r.n_jobs, r.n_machines, f"{r.seconds:.2f}", r.jobs_scheduled)
         for r in result.harmony_rows],
        title="§V-F — Harmony scheduling time "
              "(paper: 8K jobs / 10K machines within 5 s)")]
    lines.append(format_table(
        ["jobs", "oracle seconds", "partitions searched"],
        [(r.n_jobs, f"{r.seconds:.3f}", r.partitions_searched)
         for r in result.oracle_rows],
        title="Oracle exhaustive search (Bell-number growth; the paper "
              "reports ~10 h at 4K jobs)"))
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(report(run()))
