"""Fig. 3: running one job with different numbers of machines.

(a) CPU utilization falls and network utilization rises as machines are
added; (b) iteration time decomposes into PULL/COMP/PUSH, with COMP
shrinking ∝ 1/m while the COMM steps stay flat.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.group_runtime import ExecutionMode
from repro.experiments.common import run_single_group
from repro.metrics.reporting import format_table
from repro.workloads.apps import DatasetSpec, JobSpec, MLR
from repro.workloads.costmodel import CostModel

_DOPS = (4, 8, 16, 32)

#: A mid-size MLR configuration that fits in memory at every swept DoP
#: (the paper does not name the dataset of this micro-benchmark; its
#: smallest DoP implies a job small enough for 4 machines).
_DATASET = DatasetSpec("Synthetic40", 40.0, 8.0)


@dataclass
class Fig03Row:
    n_machines: int
    cpu_utilization: float
    net_utilization: float
    t_pull: float
    t_comp: float
    t_push: float
    iteration_seconds: float


@dataclass
class Fig03Result:
    rows: list[Fig03Row]


def run(dops: tuple[int, ...] = _DOPS) -> Fig03Result:
    """Run the experiment; see the module docstring for
    the paper exhibit it reproduces."""
    spec = JobSpec("MLR-dop-sweep", MLR, _DATASET, iterations=8)
    cost_model = CostModel()
    rows = []
    for m in dops:
        measured = run_single_group([spec], m,
                                    mode=ExecutionMode.ISOLATED)
        profile = cost_model.profile(spec, m)
        rows.append(Fig03Row(
            n_machines=m,
            cpu_utilization=100.0 * measured.cpu_utilization,
            net_utilization=100.0 * measured.net_utilization,
            t_pull=profile.t_pull,
            t_comp=profile.t_comp,
            t_push=profile.t_push,
            iteration_seconds=measured.mean_iteration_seconds))
    return Fig03Result(rows=rows)


def report(result: Fig03Result) -> str:
    """Render the paper-style rows for this exhibit."""
    table = format_table(
        ["machines", "CPU %", "Net %", "PULL s", "COMP s", "PUSH s",
         "iter s"],
        [(r.n_machines, f"{r.cpu_utilization:.1f}",
          f"{r.net_utilization:.1f}", f"{r.t_pull:.1f}",
          f"{r.t_comp:.1f}", f"{r.t_push:.1f}",
          f"{r.iteration_seconds:.1f}") for r in result.rows],
        title="Fig. 3 — DoP sweep (paper: CPU util falls with m, COMP "
              "shrinks ~1/m, PULL/PUSH stay flat)")
    return table


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(report(run()))
