"""Fig. 12: distributions of group DoP and jobs-per-group (§V-D).

Grouping decisions taken while running the base workload and the
computation-/communication-intensive subsets.  Paper: the DoP
distribution shifts right for computation-heavy workloads and left for
communication-heavy ones, while jobs-per-group stays roughly the same.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.core.runtime import HarmonyRuntime, RunResult
from repro.experiments.common import scaled_workload
from repro.metrics.reporting import format_table
from repro.metrics.stats import cdf_points
from repro.workloads.generator import (
    comm_intensive_subset,
    comp_intensive_subset,
)


@dataclass
class GroupShapeStats:
    label: str
    dops: np.ndarray
    jobs_per_group: np.ndarray
    result: RunResult

    @property
    def median_dop(self) -> float:
        return float(np.median(self.dops)) if len(self.dops) else 0.0

    @property
    def median_jobs(self) -> float:
        return float(np.median(self.jobs_per_group)) \
            if len(self.jobs_per_group) else 0.0

    def dop_cdf(self):
        return cdf_points(self.dops)

    def jobs_cdf(self):
        return cdf_points(self.jobs_per_group)


@dataclass
class Fig12Result:
    base: GroupShapeStats
    comp_intensive: GroupShapeStats
    comm_intensive: GroupShapeStats

    def all(self) -> list[GroupShapeStats]:
        return [self.base, self.comp_intensive, self.comm_intensive]


def _stats(label: str, workload, n_machines: int,
           config: SimConfig) -> GroupShapeStats:
    result = HarmonyRuntime(n_machines, workload, config=config).run()
    # Weight each epoch by nothing (decision-count distribution, as the
    # paper extracts "from grouping decisions of the scheduler").
    dops = np.array([m for _, m, _ in result.group_shape_log])
    jobs = np.array([n for _, _, n in result.group_shape_log])
    return GroupShapeStats(label=label, dops=dops, jobs_per_group=jobs,
                           result=result)


def run(scale: float = 1.0, seed: int = 2021,
        config: SimConfig = DEFAULT_SIM_CONFIG,
        subset_fraction: float = 0.75) -> Fig12Result:
    """Run the experiment; see the module docstring for
    the paper exhibit it reproduces."""
    workload, n_machines = scaled_workload(scale, seed)
    subset_size = max(1, int(len(workload) * subset_fraction))
    comp_subset = comp_intensive_subset(workload, subset_size)
    comm_subset = comm_intensive_subset(workload, subset_size)
    return Fig12Result(
        base=_stats("base", workload, n_machines, config),
        comp_intensive=_stats("comp-intensive", comp_subset, n_machines,
                              config),
        comm_intensive=_stats("comm-intensive", comm_subset, n_machines,
                              config))


def report(result: Fig12Result) -> str:
    """Render the paper-style rows for this exhibit."""
    rows = []
    for stats in result.all():
        rows.append((stats.label, f"{stats.median_dop:.0f}",
                     f"{stats.median_jobs:.0f}",
                     f"{np.percentile(stats.dops, 90):.0f}"
                     if len(stats.dops) else "-"))
    return format_table(
        ["workload", "median DoP", "median jobs/group", "p90 DoP"],
        rows,
        title="Fig. 12 — group shapes (paper: comp-intensive uses larger"
              " DoPs, comm-intensive smaller; jobs/group indifferent)")


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(report(run()))
