"""Fig. 11: cluster utilization over time, Harmony vs isolated.

The paper's timelines show Harmony holding high, steady CPU/network
utilization with an earlier makespan line, while the isolated baseline
fluctuates around ~50% CPU for much longer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.isolated import IsolatedRuntime
from repro.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.core.runtime import HarmonyRuntime, RunResult
from repro.experiments.common import scaled_workload
from repro.metrics.timeline import Timeline


@dataclass
class Fig11Result:
    isolated: RunResult
    harmony: RunResult

    def timeline(self, which_system: str, which_resource: str) -> Timeline:
        run_result = self.harmony if which_system == "harmony" \
            else self.isolated
        return run_result.utilization_timeline(which_resource)


def run(scale: float = 1.0, seed: int = 2021,
        config: SimConfig = DEFAULT_SIM_CONFIG) -> Fig11Result:
    """Run the experiment; see the module docstring for
    the paper exhibit it reproduces."""
    workload, n_machines = scaled_workload(scale, seed)
    isolated = IsolatedRuntime(n_machines, workload, config=config).run()
    harmony = HarmonyRuntime(n_machines, workload, config=config).run()
    return Fig11Result(isolated=isolated, harmony=harmony)


def _sparkline(values: np.ndarray, width: int = 60) -> str:
    """Coarse ASCII rendering of a 0..1 series."""
    if len(values) == 0:
        return ""
    chunks = np.array_split(values, min(width, len(values)))
    blocks = " .:-=+*#%@"
    return "".join(
        blocks[min(len(blocks) - 1,
                   int(np.clip(np.mean(chunk), 0, 1) * (len(blocks) - 1)))]
        for chunk in chunks)


def report(result: Fig11Result) -> str:
    """Render the paper-style rows for this exhibit."""
    lines = ["Fig. 11 — utilization timelines (1-minute bins)"]
    for system in ("isolated", "harmony"):
        run_result = getattr(result, system)
        for resource in ("cpu", "net"):
            timeline = result.timeline(system, resource)
            lines.append(
                f"{system:8s} {resource:3s} "
                f"avg={timeline.average_until(run_result.makespan):.1%} "
                f"|{_sparkline(timeline.values)}| "
                f"makespan={run_result.makespan / 60:.0f} min")
    lines.append(
        "paper: Harmony 93.2% CPU / 83.1% net on a ~1100-min makespan; "
        "isolated ~55% CPU on a ~1770-min makespan")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(report(run()))
