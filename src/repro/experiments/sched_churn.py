"""Scheduler churn benchmark: decision latency under arrival/completion
streams.

Online DL-cluster schedulers run placement inside the serving loop, so
what matters at the §V-F scale is not one cold ``schedule()`` call but
the total scheduling time across a stream of arrivals, completions,
metric updates, and periodic regroup checks — exactly the call pattern
:class:`~repro.core.master.HarmonyMaster` generates.  This module
replays one seeded stream twice: once through the incremental
:class:`~repro.core.scheduler.HarmonyScheduler` (plan cache, warm
starts, §IV-B4 plan patching on completions) and once through the
frozen :class:`~repro.core.reference.ReferenceScheduler`, and compares
end-to-end scheduling time.

The stream is generated up front as pure data, so both replays see the
identical pool history; every scheduling event also records the plan
score, which lets the benchmark assert the fast path's decisions match
the reference (bitwise on full-schedule events, within the regroup
threshold on patched ones).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.core.profiler import JobMetrics, Profiler
from repro.core.reference import ReferenceScheduler
from repro.core.regroup import find_similar_job, splice_plan
from repro.core.scheduler import HarmonyScheduler
from repro.metrics.reporting import format_table
from repro.workloads.costmodel import CostModel
from repro.workloads.generator import WorkloadGenerator

#: Characterization DoP: jobs are profiled (and similarity is judged)
#: at this machine count, like the scalability harness.
_PROFILE_DOP = 16


@dataclass
class ChurnRunResult:
    """One replay of the stream under one scheduler."""

    label: str
    scheduling_seconds: float
    n_schedule_calls: int
    n_patched: int
    #: (event kind, plan score) per scheduling event, in stream order.
    scores: list = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    warm_start_reuses: int = 0


@dataclass
class ChurnComparison:
    fast: ChurnRunResult
    reference: ChurnRunResult
    n_events: int

    @property
    def speedup(self) -> float:
        return (self.reference.scheduling_seconds
                / max(self.fast.scheduling_seconds, 1e-12))


def _base_profiles(n_jobs: int, seed: int) -> list[tuple[str, float, float]]:
    """(job_id, t_cpu, t_net) measured at the characterization DoP."""
    jobs = WorkloadGenerator(seed).sized_workload(n_jobs)
    cost_model = CostModel()
    profiles = []
    for job in jobs:
        profile = cost_model.profile(job, _PROFILE_DOP)
        profiles.append((job.job_id, profile.t_comp, profile.t_comm))
    return profiles


def generate_stream(profiles: list[tuple[str, float, float]],
                    n_initial: int, n_events: int, seed: int,
                    similarity_threshold: float = 0.05) -> list[tuple]:
    """The seeded event stream, as pure data shared by both replays.

    Events: ``("arrival", job_id)``, ``("completion", finished_id,
    replacement_id_or_None)``, ``("iteration", job_id, cpu_factor,
    net_factor)``, ``("check",)``.  Completion replacements are decided
    here (similarity at the characterization DoP) so the pool history
    cannot depend on which scheduler replays the stream.
    """
    rng = np.random.default_rng(seed)
    base = {job_id: JobMetrics(job_id=job_id,
                               cpu_work=t_cpu * _PROFILE_DOP,
                               t_net=t_net, m_observed=_PROFILE_DOP)
            for job_id, t_cpu, t_net in profiles}
    pool = [job_id for job_id, _, _ in profiles[:n_initial]]
    waiting = [job_id for job_id, _, _ in profiles[n_initial:]]
    events: list[tuple] = []
    for _ in range(n_events):
        roll = rng.random()
        if roll < 0.30 and waiting:
            job_id = waiting.pop(0)
            pool.append(job_id)
            events.append(("arrival", job_id))
        elif roll < 0.55 and len(pool) > max(2, n_initial // 2):
            finished = pool.pop(int(rng.integers(len(pool))))
            candidates = [base[job_id] for job_id in waiting]
            match = find_similar_job(candidates, base[finished],
                                     _PROFILE_DOP, similarity_threshold)
            replacement = match.job_id if match is not None else None
            if replacement is not None:
                waiting.remove(replacement)
                pool.append(replacement)
            events.append(("completion", finished, replacement))
        elif roll < 0.80 and pool:
            job_id = pool[int(rng.integers(len(pool)))]
            events.append((
                "iteration", job_id,
                float(max(0.5, rng.normal(1.0, 0.03))),
                float(max(0.5, rng.normal(1.0, 0.03)))))
        else:
            events.append(("check",))
    return events


def replay(scheduler, profiles: list[tuple[str, float, float]],
           events: list[tuple], n_initial: int, machines: int,
           label: str, use_patch: bool,
           regroup_threshold: float = 0.05) -> ChurnRunResult:
    """Drive one scheduler through the stream, timing scheduling work.

    Only the scheduler's decisions are timed (``schedule()`` calls and,
    on the fast path, plan patches); stream bookkeeping and profiler
    recording are not — they are the master's cost either way.
    """
    profiler = Profiler()
    for job_id, t_cpu, t_net in profiles:
        profiler.record_iteration(job_id, t_cpu, t_net, _PROFILE_DOP)
    cache = getattr(scheduler, "plan_cache", None)
    if cache is not None:
        profiler.add_listener(cache.invalidate_job)

    pool_ids = [job_id for job_id, _, _ in profiles[:n_initial]]
    result = ChurnRunResult(label=label, scheduling_seconds=0.0,
                            n_schedule_calls=0, n_patched=0)

    def absorb_stats() -> None:
        stats = getattr(scheduler, "last_stats", None)
        if stats is not None:
            result.cache_hits += stats.cache_hits
            result.cache_misses += stats.cache_misses
            result.warm_start_reuses += stats.warm_start_reuses

    def full_schedule(kind: str):
        pool = [profiler.get(job_id) for job_id in pool_ids]
        # harmony: allow[DET001] measures real scheduling latency, not sim state
        started = time.perf_counter()
        plan = scheduler.schedule(pool, machines)
        # harmony: allow[DET001] measures real scheduling latency, not sim state
        result.scheduling_seconds += time.perf_counter() - started
        result.n_schedule_calls += 1
        absorb_stats()
        result.scores.append((kind, plan.score if plan else 0.0))
        return plan

    current_plan = full_schedule("initial")
    for event in events:
        kind = event[0]
        if kind == "arrival":
            pool_ids.append(event[1])
            current_plan = full_schedule(kind)
        elif kind == "completion":
            finished, replacement = event[1], event[2]
            pool_ids.remove(finished)
            if replacement is not None:
                pool_ids.append(replacement)
            patched = _try_patch(scheduler, profiler, result, finished,
                                 replacement, regroup_threshold) \
                if use_patch else None
            current_plan = patched if patched is not None \
                else full_schedule(kind)
        elif kind == "iteration":
            job_id, cpu_factor, net_factor = event[1], event[2], event[3]
            metrics = profiler.get(job_id)
            profiler.record_iteration(
                job_id, (metrics.cpu_work / _PROFILE_DOP) * cpu_factor,
                metrics.t_net * net_factor, _PROFILE_DOP)
        else:  # periodic regroup check: unchanged pool
            current_plan = full_schedule("check")
    del current_plan  # the last plan only matters to the stream itself
    return result


def _try_patch(scheduler, profiler, result: ChurnRunResult,
               finished: str, replacement,
               regroup_threshold: float):
    """The §IV-B4 fast path: splice the previous plan and re-score.

    Returns the accepted patched plan, or None to fall back to a full
    schedule (no previous plan, the finished job was not placed, or the
    patched score trips the regroup threshold).
    """
    previous = getattr(scheduler, "_churn_last_plan", None)
    # harmony: allow[DET001] measures real scheduling latency, not sim state
    timed_from = time.perf_counter()
    patched = None
    if previous is not None and finished in previous.scheduled_job_ids:
        group_index = next(index for index, group
                           in enumerate(previous.groups)
                           if finished in group.job_ids)
        replacements = [profiler.get(replacement)] \
            if replacement is not None else []
        candidate = splice_plan(previous, scheduler.perf_model,
                                group_index, finished, replacements,
                                metrics_for=profiler.get)
        if candidate.score >= previous.score * (1.0 - regroup_threshold):
            patched = candidate
            scheduler._churn_last_plan = patched
            result.n_patched += 1
            result.scores.append(("patched", patched.score))
    # harmony: allow[DET001] measures real scheduling latency, not sim state
    result.scheduling_seconds += time.perf_counter() - timed_from
    return patched


def run(n_jobs: int = 220, n_initial: int = 120, n_events: int = 160,
        machines: int = 1000, seed: int = 2021,
        config: SimConfig = DEFAULT_SIM_CONFIG) -> ChurnComparison:
    """Replay one seeded churn stream under both schedulers."""
    profiles = _base_profiles(n_jobs, seed)
    events = generate_stream(
        profiles, n_initial, n_events, seed=seed + 1,
        similarity_threshold=config.scheduler.similarity_threshold)
    threshold = config.scheduler.regroup_benefit_threshold

    reference = _replay_with(
        ReferenceScheduler(config=config.scheduler), profiles, events,
        n_initial, machines, "reference", use_patch=False,
        regroup_threshold=threshold)
    fast = _replay_with(
        HarmonyScheduler(config=config.scheduler), profiles, events,
        n_initial, machines, "fast", use_patch=True,
        regroup_threshold=threshold)
    return ChurnComparison(fast=fast, reference=reference,
                           n_events=len(events))


def _replay_with(scheduler, profiles, events, n_initial, machines,
                 label, use_patch, regroup_threshold) -> ChurnRunResult:
    # The replay tracks the scheduler's latest plan on the instance so
    # _try_patch can splice it without threading it through every call.
    original_schedule = scheduler.schedule

    def tracking_schedule(pool, total_machines):
        plan = original_schedule(pool, total_machines)
        scheduler._churn_last_plan = plan
        return plan

    scheduler._churn_last_plan = None
    scheduler.schedule = tracking_schedule
    result = replay(scheduler, profiles, events, n_initial, machines,
                    label, use_patch, regroup_threshold)
    return result


def report(comparison: ChurnComparison) -> str:
    """Render the churn comparison rows."""
    rows = []
    for run_result in (comparison.reference, comparison.fast):
        rows.append((
            run_result.label,
            f"{run_result.scheduling_seconds:.3f}",
            run_result.n_schedule_calls,
            run_result.n_patched,
            run_result.cache_hits,
            run_result.warm_start_reuses))
    table = format_table(
        ["path", "sched seconds", "schedule() calls", "patched",
         "cache hits", "warm starts"],
        rows,
        title=f"Scheduler churn stream ({comparison.n_events} events): "
              f"incremental fast path vs reference "
              f"({comparison.speedup:.1f}x)")
    return table


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(report(run()))
