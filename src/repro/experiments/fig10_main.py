"""Fig. 10: the main JCT / makespan comparison (§V-C).

Harmony versus the isolated baseline (speedup 1.0 by definition) and
the naively co-located baseline (best/avg/worst over sampled
groupings).  Paper: naive 1.11x JCT / 1.09x makespan on average with
worst cases below 1x; Harmony 2.11x JCT / 1.60x makespan.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.baselines.isolated import IsolatedRuntime
from repro.baselines.naive import run_naive_cases
from repro.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.core.runtime import HarmonyRuntime, RunResult
from repro.experiments.common import scaled_workload
from repro.metrics.reporting import format_table
from repro.workloads.apps import JobSpec


@dataclass
class Fig10Result:
    isolated: RunResult
    naive_cases: list[RunResult]
    harmony: RunResult

    # -- speedups (isolated = 1.0) -----------------------------------------

    def jct_speedup(self, result: RunResult) -> float:
        return self.isolated.mean_jct / result.mean_jct

    def makespan_speedup(self, result: RunResult) -> float:
        return self.isolated.makespan / result.makespan

    @property
    def naive_jct_speedups(self) -> list[float]:
        return [self.jct_speedup(case) for case in self.naive_cases]

    @property
    def naive_makespan_speedups(self) -> list[float]:
        return [self.makespan_speedup(case) for case in self.naive_cases]

    @property
    def harmony_jct_speedup(self) -> float:
        return self.jct_speedup(self.harmony)

    @property
    def harmony_makespan_speedup(self) -> float:
        return self.makespan_speedup(self.harmony)

    @property
    def utilization_ratio(self) -> float:
        """Harmony / isolated CPU utilization (paper: up to 1.65x)."""
        return (self.harmony.average_utilization("cpu")
                / self.isolated.average_utilization("cpu"))


def run(scale: float = 1.0, seed: int = 2021, n_naive_cases: int = 3,
        config: SimConfig = DEFAULT_SIM_CONFIG,
        workload: Sequence[JobSpec] | None = None,
        n_machines: int | None = None) -> Fig10Result:
    """Run the experiment; see the module docstring for
    the paper exhibit it reproduces."""
    if workload is None:
        workload, default_machines = scaled_workload(scale, seed)
        n_machines = n_machines or default_machines
    elif n_machines is None:
        raise ValueError("explicit workload needs explicit n_machines")
    isolated = IsolatedRuntime(n_machines, workload, config=config).run()
    naive_cases = run_naive_cases(n_machines, workload, config=config,
                                  n_cases=n_naive_cases)
    harmony = HarmonyRuntime(n_machines, workload, config=config).run()
    return Fig10Result(isolated=isolated, naive_cases=naive_cases,
                       harmony=harmony)


def report(result: Fig10Result) -> str:
    """Render the paper-style rows for this exhibit."""
    naive_jct = result.naive_jct_speedups
    naive_makespan = result.naive_makespan_speedups
    rows = [
        ("Isolated", "1.00", "1.00"),
        ("Naive (avg [min..max])",
         f"{sum(naive_jct) / len(naive_jct):.2f} "
         f"[{min(naive_jct):.2f}..{max(naive_jct):.2f}]",
         f"{sum(naive_makespan) / len(naive_makespan):.2f} "
         f"[{min(naive_makespan):.2f}..{max(naive_makespan):.2f}]"),
        ("Harmony", f"{result.harmony_jct_speedup:.2f}",
         f"{result.harmony_makespan_speedup:.2f}"),
    ]
    lines = [format_table(
        ["scheduler", "JCT speedup", "makespan speedup"], rows,
        title="Fig. 10 — normalized speedup vs isolated "
              "(paper: naive 1.11/1.09 with worst<1; Harmony 2.11/1.60)")]
    lines.append(
        f"cluster utilization: Harmony "
        f"{result.harmony.average_utilization('cpu'):.1%} CPU / "
        f"{result.harmony.average_utilization('net'):.1%} net vs "
        f"isolated {result.isolated.average_utilization('cpu'):.1%} / "
        f"{result.isolated.average_utilization('net'):.1%} "
        f"(ratio {result.utilization_ratio:.2f}x, paper: 1.65x)")
    lines.append(
        f"Harmony concurrency: {result.harmony.mean_concurrent_jobs():.1f}"
        f" jobs in {result.harmony.mean_concurrent_groups():.1f} groups "
        "(paper: 27.2 jobs, 6.7 groups); regrouping overhead "
        f"{result.harmony.migration_overhead_seconds / result.harmony.makespan:.1%}"
        " of makespan (paper: <2%)")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(report(run()))
