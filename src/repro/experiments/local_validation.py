"""Real-thread validation of the subtask discipline (§IV-A).

Everything else in the evaluation runs on the simulator; this driver
validates the execution model on *actual threads*: jobs whose COMP
steps are wall-clock busy periods run through the real PS runtime, and
the CPU-token serialization is measured directly.

Two claims are checked:

* coordinated COMPs serialize — with ``k`` co-located jobs of COMP
  length ``x``, each round costs ~``k * x`` wall seconds;
* COMM overlaps COMP — the measured makespan sits well below the fully
  serial bound (COMM of one job rides under another's COMP).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.local_runtime import LocalHarmonyRuntime, LocalJob
from repro.metrics.reporting import format_table
from repro.ml.synthetic_sleep import SleepModel


@dataclass
class LocalValidationResult:
    n_jobs: int
    epochs: int
    comp_seconds: float
    coordinated_wall: float
    uncoordinated_wall: float
    serial_bound: float

    @property
    def serialization_ratio(self) -> float:
        """Measured coordinated wall time over the perfect-serial COMP
        bound (should be >= ~1: COMPs really run one at a time)."""
        return self.coordinated_wall / self.serial_bound

    @property
    def overlap_gain(self) -> float:
        """How much cheaper uncoordinated sleepers are — evidence the
        CPU token (not the GIL or the harness) does the serializing."""
        return self.coordinated_wall / max(self.uncoordinated_wall,
                                           1e-9)


def _jobs(n_jobs: int, epochs: int, comp_seconds: float) -> \
        list[LocalJob]:
    return [LocalJob(f"sleeper{i}", SleepModel(comp_seconds),
                     [{"target_epochs": epochs}],
                     max_epochs=epochs, learning_rate=1.0)
            for i in range(n_jobs)]


def run(n_jobs: int = 3, epochs: int = 4,
        comp_seconds: float = 0.04) -> LocalValidationResult:
    """Run the experiment; see the module docstring for
    the paper exhibit it reproduces."""
    # harmony: allow[DET001] local runtime is real threads; wall time is the exhibit
    started = time.perf_counter()
    LocalHarmonyRuntime(_jobs(n_jobs, epochs, comp_seconds),
                        barrier_timeout=60).run()
    # harmony: allow[DET001] local runtime is real threads; wall time is the exhibit
    coordinated_wall = time.perf_counter() - started

    # harmony: allow[DET001] local runtime is real threads; wall time is the exhibit
    started = time.perf_counter()
    LocalHarmonyRuntime(_jobs(n_jobs, epochs, comp_seconds),
                        coordinate=False, barrier_timeout=60).run()
    # harmony: allow[DET001] local runtime is real threads; wall time is the exhibit
    uncoordinated_wall = time.perf_counter() - started

    return LocalValidationResult(
        n_jobs=n_jobs, epochs=epochs, comp_seconds=comp_seconds,
        coordinated_wall=coordinated_wall,
        uncoordinated_wall=uncoordinated_wall,
        serial_bound=n_jobs * epochs * comp_seconds)


def report(result: LocalValidationResult) -> str:
    """Render the paper-style rows for this exhibit."""
    rows = [
        ("perfect-serial COMP bound", f"{result.serial_bound:.2f}"),
        ("coordinated (Harmony tokens)",
         f"{result.coordinated_wall:.2f}"),
        ("uncoordinated (free-for-all)",
         f"{result.uncoordinated_wall:.2f}"),
    ]
    lines = [format_table(
        ["configuration", "wall seconds"], rows,
        title=f"§IV-A on real threads — {result.n_jobs} jobs x "
              f"{result.epochs} epochs x {result.comp_seconds * 1e3:.0f}"
              " ms COMP")]
    lines.append(
        f"serialization ratio {result.serialization_ratio:.2f} "
        "(>= ~1 proves one-COMP-at-a-time); overlap gain "
        f"{result.overlap_gain:.2f}x over free-running sleepers")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(report(run()))
