"""Fig. 4: naively co-locating PS jobs still under-utilizes resources.

Singles (NMF, Lasso, MLR) versus naive pairs (NMF+Lasso, NMF+MLR) and
the triple, on 16 machines.  The pairs average out around ~50% on both
resources with larger variance; the triple runs out of memory —
"co-locating all three jobs results in an out-of-memory error".
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.group_runtime import ExecutionMode
from repro.experiments.common import run_single_group
from repro.metrics.reporting import format_table
from repro.workloads.apps import DATASETS, JobSpec, LASSO, MLR, NMF

_MACHINES = 16


def _specs() -> dict[str, JobSpec]:
    # MLR/Lasso use the large hyper-parameter configuration (the 16K-
    # class setting of Fig. 2 doubles the base model): with all three
    # inputs plus both big models resident, 16 machines overflow.
    return {
        "NMF": JobSpec("NMF", NMF, DATASETS["NMF"][0], iterations=6),
        "Lasso": JobSpec("Lasso", LASSO, DATASETS["Lasso"][0],
                         model_scale=2.0, iterations=6),
        "MLR": JobSpec("MLR", MLR, DATASETS["MLR"][0],
                       model_scale=2.0, iterations=6),
    }


@dataclass
class Fig04Row:
    label: str
    cpu_utilization: float | None
    net_utilization: float | None
    oom: bool


@dataclass
class Fig04Result:
    rows: list[Fig04Row]

    def row(self, label: str) -> Fig04Row:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(label)


def _measure(specs: Sequence[JobSpec], mode: ExecutionMode,
             label: str, n_machines: int) -> Fig04Row:
    result = run_single_group(list(specs), n_machines, mode=mode)
    if result.failed:
        return Fig04Row(label=label, cpu_utilization=None,
                        net_utilization=None, oom=True)
    return Fig04Row(label=label,
                    cpu_utilization=100.0 * result.cpu_utilization,
                    net_utilization=100.0 * result.net_utilization,
                    oom=False)


def run(n_machines: int = _MACHINES) -> Fig04Result:
    """Run the experiment; see the module docstring for
    the paper exhibit it reproduces."""
    specs = _specs()
    rows = []
    for name in ("NMF", "Lasso", "MLR"):
        rows.append(_measure([specs[name]], ExecutionMode.ISOLATED,
                             name, n_machines))
    rows.append(_measure([specs["NMF"], specs["Lasso"]],
                         ExecutionMode.NAIVE, "NMF+Lasso", n_machines))
    rows.append(_measure([specs["NMF"], specs["MLR"]],
                         ExecutionMode.NAIVE, "NMF+MLR", n_machines))
    rows.append(_measure([specs["NMF"], specs["MLR"], specs["Lasso"]],
                         ExecutionMode.NAIVE, "NMF+MLR+Lasso",
                         n_machines))
    return Fig04Result(rows=rows)


def report(result: Fig04Result) -> str:
    """Render the paper-style rows for this exhibit."""
    cells = []
    for row in result.rows:
        if row.oom:
            cells.append((row.label, "OOM", "OOM"))
        else:
            cells.append((row.label, f"{row.cpu_utilization:.1f}",
                          f"{row.net_utilization:.1f}"))
    return format_table(
        ["workload", "CPU util (%)", "Network util (%)"], cells,
        title="Fig. 4 — naive co-location (paper: pairs average ~50%, "
              "triple OOMs)")


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(report(run()))
