"""Fig. 13: accuracy of the performance model (§V-E).

(a) Error sensitivity: "we simulate the execution with different error
levels" — predictions are perturbed by a controlled relative error and
the resulting speedup is normalized to the zero-error run.  Paper:
>90% of the speedup is retained below ~7.5% error, then it degrades
quickly.

(b) Prediction error: compare predicted group iteration time and
utilization with what the runtime measured for every scheduling
decision.  Paper: below 5% at all times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.core.perfmodel import PerfModel
from repro.core.runtime import HarmonyRuntime, RunResult
from repro.experiments.common import scaled_workload
from repro.metrics.reporting import format_table


def make_error_injector(level: float, seed: int = 0):
    """Per-job multiplicative prediction error of relative size
    ``level``.

    The sign is deterministic per (job, quantity) so the scheduler is
    *consistently* wrong about each job — the failure mode an inaccurate
    performance model actually produces.
    """
    import zlib

    def injector(kind: str, job_id: str) -> float:
        digest = zlib.crc32(f"{seed}:{kind}:{job_id}".encode())
        sign = 1.0 if digest & 1 else -1.0
        return 1.0 + level * sign
    return injector


@dataclass
class Fig13aRow:
    error_level: float
    mean_jct: float
    makespan: float
    normalized_jct_speedup: float
    normalized_makespan_speedup: float


@dataclass
class Fig13Result:
    sensitivity: list[Fig13aRow]
    t_group_errors: np.ndarray
    utilization_errors: np.ndarray

    @property
    def mean_t_group_error(self) -> float:
        return float(np.mean(self.t_group_errors)) \
            if len(self.t_group_errors) else 0.0

    @property
    def mean_utilization_error(self) -> float:
        return float(np.mean(self.utilization_errors)) \
            if len(self.utilization_errors) else 0.0


def run(scale: float = 1.0, seed: int = 2021,
        error_levels: tuple[float, ...] = (0.0, 0.05, 0.10, 0.15, 0.20),
        config: SimConfig = DEFAULT_SIM_CONFIG) -> Fig13Result:
    workload, n_machines = scaled_workload(scale, seed)

    baseline: RunResult | None = None
    rows: list[Fig13aRow] = []
    reference: RunResult | None = None
    for level in error_levels:
        injector = make_error_injector(level, seed=seed) \
            if level > 0 else None
        perf_model = PerfModel(cpu_weight=config.scheduler.cpu_weight,
                               error_injector=injector)
        result = HarmonyRuntime(n_machines, workload, config=config,
                                perf_model=perf_model).run()
        if baseline is None:
            baseline = result
        if level == 0.0:
            reference = result
        rows.append(Fig13aRow(
            error_level=level,
            mean_jct=result.mean_jct,
            makespan=result.makespan,
            normalized_jct_speedup=baseline.mean_jct / result.mean_jct,
            normalized_makespan_speedup=(baseline.makespan
                                         / result.makespan)))

    if reference is None:  # error_levels did not include 0.0
        workload, n_machines = scaled_workload(scale, seed)
        reference = HarmonyRuntime(n_machines, workload,
                                   config=config).run()
    errors = reference.prediction_errors()
    return Fig13Result(
        sensitivity=rows,
        t_group_errors=np.array(errors["t_group"]),
        utilization_errors=np.array(errors["utilization"]))


def report(result: Fig13Result) -> str:
    """Render the paper-style rows for this exhibit."""
    lines = [format_table(
        ["error level", "norm. JCT speedup", "norm. makespan speedup"],
        [(f"{r.error_level:.0%}", f"{r.normalized_jct_speedup:.2f}",
          f"{r.normalized_makespan_speedup:.2f}")
         for r in result.sensitivity],
        title="Fig. 13a — speedup vs injected model error "
              "(paper: >0.9 below ~7.5%, degrading beyond)")]
    lines.append(
        f"Fig. 13b — prediction error: T_g_itr mean "
        f"{result.mean_t_group_error:.1%} "
        f"(n={len(result.t_group_errors)}), U mean "
        f"{result.mean_utilization_error:.1%} "
        f"(n={len(result.utilization_errors)}) — paper: below 5%")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(report(run()))
