"""Fig. 9 (and Table I): evaluation-workload characteristics.

CDFs of per-job iteration time and computation ratio at DoP 16 —
"iteration time [up to ~20] minutes" and computation ratios spread
across most of (0, 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.reporting import format_table
from repro.metrics.stats import cdf_points
from repro.workloads.apps import DATASETS, JobSpec
from repro.workloads.costmodel import CostModel
from repro.workloads.generator import CHARACTERIZATION_DOP, make_base_workload


@dataclass
class Fig09Result:
    iteration_minutes: np.ndarray
    comp_ratios: np.ndarray
    jobs: list[JobSpec]

    def iteration_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        return cdf_points(self.iteration_minutes)

    def comp_ratio_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        return cdf_points(self.comp_ratios)


def run(seed: int = 2021, hyper_params_per_pair: int = 10) -> Fig09Result:
    """Run the experiment; see the module docstring for
    the paper exhibit it reproduces."""
    jobs = make_base_workload(seed=seed,
                              hyper_params_per_pair=hyper_params_per_pair)
    cost_model = CostModel()
    profiles = [cost_model.profile(job, CHARACTERIZATION_DOP)
                for job in jobs]
    return Fig09Result(
        iteration_minutes=np.array([p.t_iteration / 60.0
                                    for p in profiles]),
        comp_ratios=np.array([p.comp_ratio for p in profiles]),
        jobs=jobs)


def report(result: Fig09Result) -> str:
    """Render the paper-style rows for this exhibit."""
    lines = []
    rows = []
    for app, datasets in sorted(DATASETS.items()):
        for dataset in datasets:
            rows.append((app, dataset.name, dataset.input_gb,
                         dataset.model_gb))
    lines.append(format_table(
        ["App", "Dataset", "Input (GB)", "Model (GB)"], rows,
        title="Table I — workloads"))
    lines.append("")
    it = result.iteration_minutes
    cr = result.comp_ratios
    lines.append("Fig. 9a — iteration time (min) at DoP 16: "
                 f"min {it.min():.1f}, median {np.median(it):.1f}, "
                 f"max {it.max():.1f} (paper: ~0-20 min)")
    lines.append("Fig. 9b — computation ratio at DoP 16: "
                 f"min {cr.min():.2f}, median {np.median(cr):.2f}, "
                 f"max {cr.max():.2f} (paper: spread over ~0.1-0.95)")
    quartiles = np.percentile(it, [25, 50, 75])
    lines.append(f"  iteration-time quartiles: "
                 f"{quartiles[0]:.1f} / {quartiles[1]:.1f} / "
                 f"{quartiles[2]:.1f} min")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(report(run()))
