"""Ablations of this reproduction's own design choices.

DESIGN.md documents the interpretation knobs the paper leaves open;
this driver measures how much each one matters on the base workload:

* the Algorithm 1 admission order (critical/sjf/ljf/interleave),
* the secondary-COMM scavenging rate of §IV-A's network executor,
* the periodic improvement check of §IV-B2,
* the grouping algorithm's swap fine-tuning pass.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.core.runtime import HarmonyRuntime
from repro.experiments.common import scaled_workload
from repro.metrics.reporting import format_table


@dataclass
class AblationRow:
    label: str
    mean_jct_minutes: float
    makespan_minutes: float
    cpu_utilization: float


@dataclass
class DesignAblationsResult:
    rows: list[AblationRow]

    def row(self, label: str) -> AblationRow:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(label)


def _measure(label: str, workload, n_machines: int,
             config: SimConfig) -> AblationRow:
    result = HarmonyRuntime(n_machines, workload, config=config).run()
    return AblationRow(label=label,
                       mean_jct_minutes=result.mean_jct / 60,
                       makespan_minutes=result.makespan / 60,
                       cpu_utilization=result.average_utilization("cpu"))


def run(scale: float = 0.5, seed: int = 2021,
        config: SimConfig = DEFAULT_SIM_CONFIG) -> DesignAblationsResult:
    """Run the experiment; see the module docstring for
    the paper exhibit it reproduces."""
    workload, n_machines = scaled_workload(scale, seed)
    rows = [_measure("default", workload, n_machines, config)]

    for order in ("sjf", "ljf", "interleave"):
        variant = replace(config, scheduler=replace(
            config.scheduler, admission_order=order))
        rows.append(_measure(f"admission={order}", workload, n_machines,
                             variant))

    no_secondary = replace(config, execution=replace(
        config.execution, secondary_comm_rate=0.0))
    rows.append(_measure("no secondary COMM", workload, n_machines,
                         no_secondary))

    no_periodic = replace(config, scheduler=replace(
        config.scheduler, reschedule_check_seconds=1e12))
    rows.append(_measure("no periodic check", workload, n_machines,
                         no_periodic))

    no_swaps = replace(config, scheduler=replace(
        config.scheduler, max_swap_passes=0))
    rows.append(_measure("no swap fine-tuning", workload, n_machines,
                         no_swaps))
    return DesignAblationsResult(rows=rows)


def report(result: DesignAblationsResult) -> str:
    """Render the paper-style rows for this exhibit."""
    return format_table(
        ["variant", "mean JCT (min)", "makespan (min)", "CPU util"],
        [(r.label, f"{r.mean_jct_minutes:.0f}",
          f"{r.makespan_minutes:.0f}", f"{r.cpu_utilization:.1%}")
         for r in result.rows],
        title="Design-choice ablations (reproduction-specific knobs)")


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(report(run()))
