"""§V-C ablation: how each technique contributes to the benefit.

"With only subtasks (§IV-A), we achieve 32% of total benefit, and
adding grouping techniques (§IV-B) achieves 81%, and adding dynamic
reloading technique (§IV-C) completes our solution."

Stages (see EXPERIMENTS.md for the interpretation note):

1. *subtasks only* — coordinated subtask execution with queue-order
   grouping and a static, uniform spill ratio;
2. *+ grouping* — the full performance-model-driven scheduler, spill
   ratio still static;
3. *+ dynamic reloading* — complete Harmony (per-job hill climbing).

At Table I memory footprints, co-locating jobs at all requires spilling
input blocks (Fig. 4's triple OOMs on 16 machines), so the ablation
isolates the *dynamic* part of §IV-C; a strictly no-spill stage simply
degenerates to the isolated baseline (that result is reported too).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.baselines.base import BaselineRuntime
from repro.baselines.isolated import IsolatedRuntime
from repro.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.core.group_runtime import ExecutionMode
from repro.core.runtime import HarmonyRuntime, RunResult
from repro.experiments.common import scaled_workload
from repro.metrics.reporting import format_table

#: Static spill ratio for stages 1-2 (between Fig. 4's no-spill OOM and
#: full spill; the §V-G sweep shows mid-range ratios are workable).
_STATIC_ALPHA = 0.5


@dataclass
class AblationResult:
    isolated: RunResult
    no_spill_harmony: RunResult
    subtasks_only: RunResult
    with_grouping: RunResult
    full: RunResult

    def _reduction(self, result: RunResult) -> float:
        return self.isolated.makespan - result.makespan

    def benefit_fraction(self, result: RunResult) -> float:
        """Fraction of full Harmony's makespan reduction achieved."""
        total = self._reduction(self.full)
        if total <= 0:
            return 0.0
        return self._reduction(result) / total

    @property
    def stages(self) -> list[tuple[str, RunResult]]:
        return [("subtasks only", self.subtasks_only),
                ("+ grouping", self.with_grouping),
                ("+ dynamic reloading (full)", self.full)]


def _static_spill(config: SimConfig) -> SimConfig:
    return replace(config, memory=replace(config.memory,
                                          fixed_alpha=_STATIC_ALPHA))


def _no_spill(config: SimConfig) -> SimConfig:
    return replace(config, memory=replace(config.memory,
                                          spill_enabled=False))


def run(scale: float = 1.0, seed: int = 2021,
        config: SimConfig = DEFAULT_SIM_CONFIG) -> AblationResult:
    """Run the experiment; see the module docstring for
    the paper exhibit it reproduces."""
    workload, n_machines = scaled_workload(scale, seed)

    isolated = IsolatedRuntime(n_machines, workload,
                               config=config).run()
    # Sanity stage: grouping *without any* spill degenerates toward the
    # isolated baseline (memory blocks co-location entirely).
    no_spill = HarmonyRuntime(n_machines, workload,
                              config=_no_spill(config)).run()
    # Stage 1: coordinated subtasks, queue-order grouping, static spill.
    subtasks_only = BaselineRuntime(
        n_machines, workload, mode=ExecutionMode.HARMONY,
        name="subtasks-only", config=_static_spill(config),
        group_size=3, dop_scale=0.5).run()
    # Stage 2: the full scheduler, spill ratio still static.
    with_grouping = HarmonyRuntime(n_machines, workload,
                                   config=_static_spill(config)).run()
    # Stage 3: complete Harmony (dynamic per-job reloading).
    full = HarmonyRuntime(n_machines, workload, config=config).run()
    return AblationResult(isolated=isolated, no_spill_harmony=no_spill,
                          subtasks_only=subtasks_only,
                          with_grouping=with_grouping, full=full)


def report(result: AblationResult) -> str:
    """Render the paper-style rows for this exhibit."""
    rows = []
    for label, stage in result.stages:
        rows.append((label, f"{stage.makespan / 60:.0f}",
                     f"{result.isolated.makespan / stage.makespan:.2f}",
                     f"{result.benefit_fraction(stage):.0%}"))
    lines = [format_table(
        ["stage", "makespan (min)", "speedup vs isolated",
         "fraction of full benefit"], rows,
        title="§V-C ablation (paper: subtasks 32%, +grouping 81%, "
              "+reloading 100%)")]
    lines.append(
        "sanity: scheduler without ANY spilling achieves "
        f"{result.isolated.makespan / result.no_spill_harmony.makespan:.2f}x"
        " — at Table I footprints, spilling is what makes co-location "
        "possible at all")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(report(run()))
