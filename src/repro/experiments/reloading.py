"""§V-G: dynamic data reloading micro-benchmark.

8 jobs (4 apps x 2 datasets) co-located on 32 machines, with the sum of
inputs exceeding the machines' memory.  A fixed disk-block ratio alpha
is swept — too low melts the group in GC ("GC explodes"), too high
stalls COMP on disk reads — and Harmony's per-job hill climbing is
compared against the best fixed value.  Paper: fixed-alpha minimum
52.9 s at alpha=0.3; adaptive reaches 44.3 s (16.3% better) because it
"can dynamically adjust the ratio using different ratios for each job";
main-run alphas average 0.34 (min 0.11, max 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.experiments.common import SingleGroupResult, run_single_group
from repro.metrics.reporting import format_table
from repro.workloads.generator import WorkloadGenerator

#: "we run 8 jobs (4 apps * 2 datasets) on 32 EC2 instances".
_MACHINES = 32
_ITERATIONS = 10


@dataclass
class ReloadingResult:
    fixed_rows: list[tuple[float, float]]  # (alpha, mean iteration s)
    adaptive_iteration_seconds: float
    adaptive: SingleGroupResult
    adaptive_alphas: np.ndarray

    @property
    def best_fixed(self) -> tuple[float, float]:
        return min(self.fixed_rows, key=lambda row: row[1])

    @property
    def adaptive_gain(self) -> float:
        """Relative improvement of adaptive over the best fixed alpha."""
        _, best_seconds = self.best_fixed
        return (best_seconds - self.adaptive_iteration_seconds) \
            / best_seconds

    def alpha_stats(self) -> tuple[float, float, float]:
        if self.adaptive_alphas.size == 0:
            return (0.0, 0.0, 0.0)
        return (float(self.adaptive_alphas.mean()),
                float(self.adaptive_alphas.min()),
                float(self.adaptive_alphas.max()))


#: The paper's §V-G iterations are mini-batch granular (their optimum
#: sits at 44-53 s); scaling per-iteration compute/communication down
#: (inputs and memory footprints unchanged!) reproduces that regime,
#: where one iteration's reload window is genuinely tight.
_MINIBATCH_SCALE = 0.08


def _workload(seed: int):
    jobs = WorkloadGenerator(seed).base_workload(hyper_params_per_pair=1)
    return [replace(job,
                    compute_scale=job.compute_scale * _MINIBATCH_SCALE,
                    model_scale=job.model_scale * _MINIBATCH_SCALE)
            for job in jobs]


def _group_run(alpha, n_machines: int, seed: int,
               config: SimConfig):
    memory = replace(config.memory, fixed_alpha=alpha)
    group_config = replace(config, memory=memory)
    specs = _workload(seed)
    return run_single_group(specs, n_machines, config=group_config,
                            max_iterations=_ITERATIONS)


def run(n_machines: int = _MACHINES, seed: int = 2021,
        alphas: tuple[float, ...] = (0.1, 0.2, 0.3, 0.5, 0.7, 0.9),
        config: SimConfig = DEFAULT_SIM_CONFIG) -> ReloadingResult:
    fixed_rows = []
    for alpha in alphas:
        result = _group_run(alpha, n_machines, seed, config)
        fixed_rows.append((alpha, result.mean_iteration_seconds))

    # Adaptive: fixed_alpha None = per-job hill climbing.  Run the
    # group directly (not via run_single_group) to keep the alpha trace.
    from repro.core.group_runtime import ExecutionMode, GroupRuntime
    from repro.core.job import Job, JobState
    from repro.sim import RandomStreams, Simulator
    from repro.workloads.costmodel import CostModel
    from repro.experiments.common import _CollectingHooks

    simulator = Simulator()
    cost_model = CostModel(config.machine)
    hooks = _CollectingHooks()
    group = GroupRuntime(simulator, "vg", tuple(range(n_machines)),
                         ExecutionMode.HARMONY, cost_model, config,
                         RandomStreams(config.seed), hooks)
    for spec in _workload(seed):
        spec = replace(spec, iterations=min(spec.iterations, _ITERATIONS))
        job = Job(spec)
        job.state = JobState.RUNNING
        group.add_job(job)
    simulator.run()
    durations = [c.duration for c in group.cycles]
    adaptive_seconds = float(np.mean(durations)) if durations else 0.0
    adaptive = SingleGroupResult(
        job_ids=tuple(), n_machines=n_machines,
        cpu_utilization=0.0, net_utilization=0.0,
        mean_iteration_seconds=adaptive_seconds,
        duration_seconds=simulator.now)
    alphas_seen = np.array([c.alpha for c in group.cycles])
    return ReloadingResult(fixed_rows=fixed_rows,
                           adaptive_iteration_seconds=adaptive_seconds,
                           adaptive=adaptive,
                           adaptive_alphas=alphas_seen)


def report(result: ReloadingResult) -> str:
    """Render the paper-style rows for this exhibit."""
    rows = [(f"fixed alpha={alpha:.1f}", f"{seconds:.1f}")
            for alpha, seconds in result.fixed_rows]
    rows.append(("adaptive (Harmony)",
                 f"{result.adaptive_iteration_seconds:.1f}"))
    lines = [format_table(
        ["configuration", "mean iteration (s)"], rows,
        title="§V-G — dynamic data reloading "
              "(paper: U-shaped in alpha, minimum 52.9 s at 0.3; "
              "adaptive 44.3 s, 16.3% better)")]
    best_alpha, best_seconds = result.best_fixed
    mean_alpha, min_alpha, max_alpha = result.alpha_stats()
    lines.append(f"best fixed alpha {best_alpha:.1f} at "
                 f"{best_seconds:.1f} s; adaptive gain "
                 f"{result.adaptive_gain:+.1%}")
    lines.append(f"adaptive alpha: mean {mean_alpha:.2f}, min "
                 f"{min_alpha:.2f}, max {max_alpha:.2f} "
                 "(paper main run: mean 0.34, min 0.11, max 1.0)")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(report(run()))
