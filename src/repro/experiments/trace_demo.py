"""Observability demo: a traced multi-job run, exported for Perfetto.

Runs a small Harmony workload with the :mod:`repro.trace` layer
enabled, writes a Chrome-trace JSON (load it at https://ui.perfetto.dev
or ``chrome://tracing``) plus the metrics-registry CSV, and verifies
the §IV-A pipelining visually *and* numerically: on a machine set
hosting co-located jobs, COMP spans of one job overlap COMM spans of
another (that is Harmony's whole point — "the CPU subtask of one job
runs while the network subtask of another is in flight").
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.config import SimConfig
from repro.core.runtime import HarmonyRuntime
from repro.experiments.common import scaled_workload
from repro.metrics.export import export_counters
from repro.metrics.reporting import format_table
from repro.trace.export import write_chrome_trace

#: Jobs beyond this count only stretch the demo run without making the
#: trace more readable.
_MAX_JOBS = 8


@dataclass
class TraceDemoResult:
    n_jobs: int
    n_machines: int
    makespan_seconds: float
    n_spans: int
    n_instants: int
    #: Total traced seconds per span category (comp, comm, wait, ...).
    category_seconds: dict
    #: Seconds during which a COMP span of one job overlapped a COMM
    #: span of a *different* co-located job, summed over machine sets.
    comp_comm_overlap_seconds: float
    steps_completed: float
    bytes_pushed: float
    trace_path: Path
    counters_path: Path


def _job_of_lane(tracer, span) -> str:
    """The job id encoded in a lane's thread name ("cpu · <job>")."""
    label = tracer.thread_names.get((span.track.pid, span.track.tid), "")
    return label.split(" · ", 1)[1] if " · " in label else label


def _overlap_seconds(tracer) -> float:
    """Σ |COMP(job a) ∩ COMM(job b)| over co-located job pairs a ≠ b."""
    by_key: dict = {}
    for span in tracer.spans:
        if span.cat not in ("comp", "comm"):
            continue
        key = (span.track.pid, span.cat, _job_of_lane(tracer, span))
        by_key.setdefault(key, []).append((span.start, span.end))
    total = 0.0
    for (pid, cat, job), comp_spans in by_key.items():
        if cat != "comp":
            continue
        for (other_pid, other_cat, other_job), comm_spans \
                in by_key.items():
            if (other_pid != pid or other_cat != "comm"
                    or other_job == job):
                continue
            for lo, hi in comp_spans:
                for lo2, hi2 in comm_spans:
                    total += max(0.0, min(hi, hi2) - max(lo, lo2))
    return total


def run(scale: float = 0.1, seed: int = 2021,
        out_dir: "str | Path" = "results/trace") -> TraceDemoResult:
    """Run the experiment; see the module docstring for
    the paper exhibit it reproduces."""
    config = SimConfig().with_seed(seed).with_tracing()
    specs, n_machines = scaled_workload(scale=scale, seed=seed)
    specs = specs[:_MAX_JOBS]
    runtime = HarmonyRuntime(n_machines, specs, config=config)
    result = runtime.run()
    tracer = result.trace
    assert tracer is not None  # with_tracing() guarantees a live tracer

    base = Path(out_dir)
    trace_path = write_chrome_trace(base / "harmony_trace.json", tracer)
    counters_path = export_counters(base / "harmony_counters.csv", tracer)

    category_seconds: dict = {}
    for span in tracer.spans:
        category_seconds[span.cat] = (category_seconds.get(span.cat, 0.0)
                                      + span.duration)
    registry = tracer.registry
    return TraceDemoResult(
        n_jobs=len(specs),
        n_machines=n_machines,
        makespan_seconds=result.makespan,
        n_spans=len(tracer.spans),
        n_instants=len(tracer.instants),
        category_seconds=category_seconds,
        comp_comm_overlap_seconds=_overlap_seconds(tracer),
        steps_completed=registry.total(".steps"),
        bytes_pushed=registry.total(".bytes_pushed"),
        trace_path=trace_path,
        counters_path=counters_path)


def report(result: TraceDemoResult) -> str:
    """Render the paper-style rows for this exhibit."""
    rows = [(cat, f"{seconds / 60:.1f}")
            for cat, seconds in sorted(result.category_seconds.items())]
    table = format_table(
        ["span category", "total (min)"], rows,
        title=f"Traced run — {result.n_jobs} jobs on "
              f"{result.n_machines} machines, makespan "
              f"{result.makespan_seconds / 60:.1f} min "
              f"({result.n_spans} spans, {result.n_instants} instants)")
    overlap = result.comp_comm_overlap_seconds
    comp = result.category_seconds.get("comp", 0.0)
    lines = [
        table,
        f"COMP/COMM overlap across co-located jobs: "
        f"{overlap / 60:.1f} min "
        f"({100.0 * overlap / comp:.0f}% of COMP time)" if comp > 0
        else "no COMP spans recorded",
        f"steps completed: {result.steps_completed:.0f}; "
        f"bytes pushed: {result.bytes_pushed / 1024 ** 3:.1f} GiB",
        f"trace:    {result.trace_path}  (open in ui.perfetto.dev)",
        f"counters: {result.counters_path}",
    ]
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(report(run()))
