"""Simulator engine microbenchmark: batched fast path vs reference.

Runs the same group — once under the ``"fast"`` engine and once under
``"reference"`` — and compares both wall-clock cost and simulated
outcomes.  Two scenarios cover the engine's two lanes:

* :func:`run` — a long single-job group, the *solo lane*'s shape: the
  whole job batches in closed form (measured ~4.5x).
* :func:`run_multi` — a 5-job contended group, the *coordinated drive
  lane*'s shape: every wake is parked and served in drive windows
  without heap round-trips (measured ~2x; the shared generator/event
  machinery that the solo lane also skips is still paid here).

The win must come from skipped event-loop work, not changed behaviour:
the two runs' simulated durations and iteration times are asserted
bitwise-equal by the caller (and exhaustively by
``tests/test_sim_fastpath.py``).

Used by ``benchmarks/bench_sim_engines.py`` (the CI regression gate
reads its recorded timings) and runnable standalone::

    PYTHONPATH=src python -m repro.experiments.sim_engines
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.check.oracle import deterministic_config
from repro.core.group_runtime import ExecutionMode
from repro.experiments.common import SingleGroupResult, run_single_group
from repro.workloads.generator import WorkloadGenerator

#: Long enough that per-iteration cost dominates setup; short enough
#: for the smoke-bench budget (~0.3s fast / ~1.5s reference per round).
DEFAULT_ITERATIONS = 30_000


@dataclass(frozen=True)
class EngineRun:
    """One engine's measurement."""

    engine: str
    #: Best-of-``rounds`` real seconds for the whole run.
    wall_seconds: float
    result: SingleGroupResult


@dataclass(frozen=True)
class EngineComparison:
    fast: EngineRun
    reference: EngineRun
    n_iterations: int
    n_machines: int
    n_jobs: int = 1

    @property
    def speedup(self) -> float:
        if self.fast.wall_seconds <= 0:
            return float("inf")
        return self.reference.wall_seconds / self.fast.wall_seconds

    @property
    def outcomes_equal(self) -> bool:
        """Bitwise-identical simulated behaviour across engines."""
        a, b = self.fast.result, self.reference.result
        # harmony: allow[DET006] bitwise-identical engine outcomes are the property under test
        return (a.duration_seconds == b.duration_seconds
                # harmony: allow[DET006] bitwise-identical engine outcomes are the property under test
                and a.mean_iteration_seconds == b.mean_iteration_seconds
                # harmony: allow[DET006] bitwise-identical engine outcomes are the property under test
                and a.per_job_cycle_seconds == b.per_job_cycle_seconds)


def run(iterations: int = DEFAULT_ITERATIONS, m: int = 4,
        seed: int = 7, rounds: int = 2) -> EngineComparison:
    """Measure both engines on one long isolated single-job group."""
    pool = WorkloadGenerator(seed).base_workload(hyper_params_per_pair=1)
    spec = replace(pool[0], iterations=iterations, submit_time=0.0)
    config = deterministic_config(seed)
    runs: dict[str, EngineRun] = {}
    for engine in ("fast", "reference"):
        cfg = config.with_engine(engine)
        best = float("inf")
        result = None
        for _ in range(max(1, rounds)):
            # harmony: allow[DET001] wall_seconds measures real runtime, never simulation state
            t0 = time.perf_counter()
            result = run_single_group([spec], m,
                                      mode=ExecutionMode.ISOLATED,
                                      config=cfg)
            # harmony: allow[DET001] wall_seconds measures real runtime, never simulation state
            best = min(best, time.perf_counter() - t0)
        runs[engine] = EngineRun(engine=engine, wall_seconds=best,
                                 result=result)
    return EngineComparison(fast=runs["fast"],
                            reference=runs["reference"],
                            n_iterations=iterations, n_machines=m)


#: Drive-lane scenario: enough co-located jobs that every wake goes
#: through the coordinated engine, on enough machines that the group
#: stays healthy (no GC-pressure inflation blowing up iteration times).
MULTI_JOBS = 5
MULTI_ITERATIONS = 2_400
MULTI_MACHINES = 24


def run_multi(iterations: int = MULTI_ITERATIONS,
              n_jobs: int = MULTI_JOBS, m: int = MULTI_MACHINES,
              seed: int = 7, rounds: int = 3) -> EngineComparison:
    """Measure both engines on one contended multi-job HARMONY group.

    Unlike :func:`run` this times CPU seconds (``time.process_time``)
    over interleaved rounds, keeping best-of: the effect under test
    (~2x) is smaller than the solo lane's, and wall-clock noise on a
    shared machine can exceed it.
    """
    pool = WorkloadGenerator(seed).base_workload(hyper_params_per_pair=1)
    specs = [replace(pool[i % len(pool)], job_id=f"j{i}",
                     iterations=iterations, submit_time=0.0)
             for i in range(n_jobs)]
    config = deterministic_config(seed)
    best: dict[str, float] = {"fast": float("inf"),
                              "reference": float("inf")}
    results: dict[str, SingleGroupResult] = {}
    for _ in range(max(1, rounds)):
        for engine in ("fast", "reference"):
            cfg = config.with_engine(engine)
            # harmony: allow[DET001] wall_seconds measures real runtime, never simulation state
            t0 = time.process_time()
            result = run_single_group(specs, m,
                                      mode=ExecutionMode.HARMONY,
                                      config=cfg)
            # harmony: allow[DET001] wall_seconds measures real runtime, never simulation state
            best[engine] = min(best[engine], time.process_time() - t0)
            results[engine] = result
    return EngineComparison(
        fast=EngineRun("fast", best["fast"], results["fast"]),
        reference=EngineRun("reference", best["reference"],
                            results["reference"]),
        n_iterations=iterations, n_machines=m, n_jobs=n_jobs)


def report(comparison: EngineComparison) -> str:
    lines = [
        f"simulator engines, {comparison.n_jobs} job(s) x "
        f"{comparison.n_iterations} iterations on "
        f"{comparison.n_machines} machines:",
        f"  fast:      {comparison.fast.wall_seconds:7.3f}s wall",
        f"  reference: {comparison.reference.wall_seconds:7.3f}s wall",
        f"  speedup:   {comparison.speedup:7.2f}x",
        f"  simulated outcomes bitwise equal: "
        f"{comparison.outcomes_equal}",
    ]
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(report(run()))
    print(report(run_multi()))
