"""Validation: group-level abstraction vs per-worker simulation.

DESIGN.md models each job group as one symmetric pipeline; this driver
quantifies what that abstraction costs by running the same groups at
per-machine granularity (every machine its own CPU/NIC, real cross-
worker barriers — Fig. 7's full structure) and comparing:

* the measured steady-state group iteration time, and
* both against the Eq. 1 analytical prediction.

The claim being validated is the one behind Fig. 13b: with subtask
execution, the iteration time of a coordinated group is predictable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import DEFAULT_SIM_CONFIG, ExecutionConfig, SimConfig
from repro.core.fine_executor import run_fine_grained_group
from repro.core.perfmodel import PerfModel
from repro.core.profiler import JobMetrics
from repro.experiments.common import run_single_group
from repro.metrics.reporting import format_table
from repro.workloads.costmodel import CostModel
from repro.workloads.generator import WorkloadGenerator


@dataclass
class GranularityRow:
    label: str
    n_jobs: int
    n_machines: int
    eq1_prediction: float
    group_level_measured: float
    per_worker_measured: float

    @property
    def abstraction_error(self) -> float:
        """Relative gap between the two simulation granularities."""
        return abs(self.group_level_measured - self.per_worker_measured) \
            / self.per_worker_measured

    @property
    def model_error(self) -> float:
        """Relative gap between Eq. 1 and the per-worker ground truth."""
        return abs(self.eq1_prediction - self.per_worker_measured) \
            / self.per_worker_measured


@dataclass
class GranularityResult:
    rows: list[GranularityRow]

    @property
    def worst_abstraction_error(self) -> float:
        return max(row.abstraction_error for row in self.rows)

    @property
    def worst_model_error(self) -> float:
        return max(row.model_error for row in self.rows)


def _quiet_config() -> SimConfig:
    """Deterministic timings and no memory effects: both granularities
    share the memory model, so it would only add variance here."""
    return replace(
        DEFAULT_SIM_CONFIG,
        execution=ExecutionConfig(duration_jitter_cv=0.0,
                                  barrier_overhead=0.0))


def run(iterations: int = 12, seed: int = 2021) -> GranularityResult:
    """Run the experiment; see the module docstring for the modelling
    claim it validates."""
    config = _quiet_config()
    cost_model = CostModel(config.machine)
    perf_model = PerfModel()
    # 16 jobs: 2 hyper-params x 8 (app, dataset) pairs, ordered
    # LDA(4), Lasso(4), MLR(4), NMF(4).
    jobs = WorkloadGenerator(seed).base_workload(hyper_params_per_pair=2)

    cases = [
        ("2 LDA jobs / 8 machines", [jobs[0], jobs[1]], 8),
        ("3 mixed jobs / 16 machines", [jobs[0], jobs[4], jobs[8]], 16),
        ("4 mixed jobs / 24 machines",
         [jobs[1], jobs[5], jobs[9], jobs[13]], 24),
    ]
    rows = []
    for label, specs, n_machines in cases:
        specs = [replace(spec, iterations=iterations) for spec in specs]
        metrics = []
        for spec in specs:
            profile = cost_model.profile(spec, n_machines)
            metrics.append(JobMetrics(spec.job_id,
                                      cpu_work=profile.t_comp
                                      * n_machines,
                                      t_net=profile.t_comm,
                                      m_observed=n_machines))
        eq1 = perf_model.estimate_group(metrics,
                                        n_machines).t_group_iteration

        coarse = run_single_group(specs, n_machines, config=config)
        fine = run_fine_grained_group(specs, n_machines, config,
                                      iterations=iterations, seed=seed)
        rows.append(GranularityRow(
            label=label, n_jobs=len(specs), n_machines=n_machines,
            eq1_prediction=eq1,
            group_level_measured=coarse.pacing_cycle_seconds(),
            per_worker_measured=fine.pacing_cycle_seconds()))
    return GranularityResult(rows=rows)


def report(result: GranularityResult) -> str:
    """Render the validation table."""
    table = format_table(
        ["group", "Eq. 1 (s)", "group-level sim (s)",
         "per-worker sim (s)", "abstraction err", "model err"],
        [(r.label, f"{r.eq1_prediction:.1f}",
          f"{r.group_level_measured:.1f}",
          f"{r.per_worker_measured:.1f}",
          f"{r.abstraction_error:.1%}", f"{r.model_error:.1%}")
         for r in result.rows],
        title="Granularity validation — one-pipeline abstraction vs "
              "Fig. 7 per-worker simulation")
    return table


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(report(run()))
