"""Shared plumbing for the experiment drivers."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace

from repro.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.core.group_runtime import ExecutionMode, GroupRuntime
from repro.core.job import Job, JobState
from repro.errors import OutOfMemoryError
from repro.sim import RandomStreams, Simulator
from repro.trace.tracer import Tracer, build_tracer
from repro.workloads.apps import JobSpec
from repro.workloads.costmodel import CostModel
from repro.workloads.generator import WorkloadGenerator

#: Paper-scale experiment size (§V-B).
PAPER_MACHINES = 100
PAPER_JOBS = 80


def scaled_workload(scale: float = 1.0, seed: int = 2021) -> \
        tuple[list[JobSpec], int]:
    """The base workload and cluster shrunk by ``scale``.

    ``scale=1.0`` is the paper's 80 jobs / 100 machines; smaller scales
    shrink both proportionally (at least 1 hyper-param per app/dataset
    pair, and at least 20 machines so the *no-spill* baselines can
    place the largest Table I job) so quick test/bench runs keep the
    same shape.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale {scale} not in (0, 1]")
    hyper = max(1, round(10 * scale))
    machines = max(20, round(PAPER_MACHINES * scale))
    jobs = WorkloadGenerator(seed).base_workload(
        hyper_params_per_pair=hyper)
    return jobs, machines


@dataclass
class SingleGroupResult:
    """Measured behaviour of one job group run to completion."""

    job_ids: tuple[str, ...]
    n_machines: int
    cpu_utilization: float
    net_utilization: float
    mean_iteration_seconds: float
    duration_seconds: float
    #: Per-job mean cycle times, first (pipeline-fill) cycle excluded.
    per_job_cycle_seconds: dict = None  # type: ignore[assignment]
    oom: OutOfMemoryError | None = None
    #: The run's tracer when ``config.trace.enabled`` (else None).
    trace: Tracer | None = None

    @property
    def failed(self) -> bool:
        return self.oom is not None

    def pacing_cycle_seconds(self) -> float:
        """The slowest job's mean cycle — the measured counterpart of
        Eq. 1's ``max`` semantics (in a job-bound group the largest job
        paces the group while smaller ones cycle faster)."""
        if not self.per_job_cycle_seconds:
            return self.mean_iteration_seconds
        return max(self.per_job_cycle_seconds.values())


class _CollectingHooks:
    """Minimal GroupHooks that records terminal events."""

    #: No per-iteration behaviour at all — fast-path eligible.
    iteration_hooks_inert = True

    def __init__(self):
        self.finished: list[str] = []
        self.failed: list[tuple[str, Exception]] = []

    def on_iteration(self, job, group):
        pass

    def on_job_finished(self, job, group):
        job.state = JobState.FINISHED
        self.finished.append(job.job_id)

    def on_job_paused(self, job, group):  # pragma: no cover - unused
        job.state = JobState.PAUSED

    def on_job_failed(self, job, group, error):
        job.state = JobState.FAILED
        self.failed.append((job.job_id, error))


def run_single_group(specs: Sequence[JobSpec], n_machines: int,
                     mode: ExecutionMode = ExecutionMode.HARMONY,
                     config: SimConfig = DEFAULT_SIM_CONFIG,
                     max_iterations: int | None = None) -> \
        SingleGroupResult:
    """Run one fixed job group to completion and measure it.

    The workhorse behind Figs. 2-4 and the §V-G micro-benchmarks: no
    master, no scheduling — just the §IV-A execution engine on one
    machine set.
    """
    sim = Simulator()
    if config.trace.enabled:
        sim.tracer = build_tracer(lambda: sim.now, config.trace)
    cost_model = CostModel(config.machine)
    hooks = _CollectingHooks()
    group = GroupRuntime(sim, "exp", tuple(range(n_machines)), mode,
                         cost_model, config, RandomStreams(config.seed),
                         hooks)
    for spec in specs:
        if max_iterations is not None:
            spec = replace(spec, iterations=min(spec.iterations,
                                                max_iterations))
        job = Job(spec)
        job.state = JobState.RUNNING
        group.add_job(job)
    sim.run()
    group.cpu.close_segments()
    group.net.close_segments()
    duration = sim.now
    oom = None
    for _job_id, error in hooks.failed:
        if isinstance(error, OutOfMemoryError):
            oom = error
            break
    cycles = [c.duration for c in group.cycles]
    per_job: dict[str, float] = {}
    for job_id in sorted({c.job_id for c in group.cycles}):
        durations = [c.duration for c in group.cycles
                     if c.job_id == job_id][1:]
        if durations:
            per_job[job_id] = sum(durations) / len(durations)
    return SingleGroupResult(
        job_ids=tuple(spec.job_id for spec in specs),
        n_machines=n_machines,
        cpu_utilization=(group.cpu.busy_seconds / duration
                         if duration > 0 else 0.0),
        net_utilization=(group.net.busy_seconds / duration
                         if duration > 0 else 0.0),
        mean_iteration_seconds=(sum(cycles) / len(cycles)
                                if cycles else 0.0),
        duration_seconds=duration,
        per_job_cycle_seconds=per_job,
        oom=oom,
        trace=sim.tracer if sim.tracer.enabled else None)
