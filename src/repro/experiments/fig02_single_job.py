"""Fig. 2: single-job resource utilization in a plain PS.

"ML training in PS fails to achieve high resource utilization, while
showing different resource usage ratios with various workloads": MLR
with 16K/8K classes and LDA on PubMed/NYTimes, run alone on 16
machines.  Expect overall utilization well below 100% with app-specific
CPU:network ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.group_runtime import ExecutionMode
from repro.experiments.common import run_single_group
from repro.metrics.reporting import format_table
from repro.workloads.apps import DATASETS, JobSpec, LDA, MLR

#: The paper's four configurations: MLR hyper-params are class counts
#: (16K doubles the 8K model); LDA varies the dataset.
_CONFIGS = [
    ("MLR-16K", JobSpec("MLR-16K", MLR, DATASETS["MLR"][0],
                        compute_scale=1.2, model_scale=2.0,
                        iterations=8)),
    ("MLR-8K", JobSpec("MLR-8K", MLR, DATASETS["MLR"][0],
                       compute_scale=1.0, model_scale=1.0,
                       iterations=8)),
    ("LDA-PubMed", JobSpec("LDA-PubMed", LDA, DATASETS["LDA"][0],
                           iterations=8)),
    ("LDA-NYTimes", JobSpec("LDA-NYTimes", LDA, DATASETS["LDA"][1],
                            iterations=8)),
]

#: DoP of the motivation experiments ("16 AWS m4.2xlarge EC2 instances").
_MACHINES = 16


@dataclass
class Fig02Result:
    rows: list[tuple[str, float, float]]  # (config, cpu%, net%)


def run(n_machines: int = _MACHINES) -> Fig02Result:
    """Run the experiment; see the module docstring for
    the paper exhibit it reproduces."""
    rows = []
    for label, spec in _CONFIGS:
        # A single job in ISOLATED mode: the classic sequential
        # PULL-COMP-PUSH loop of Fig. 1.
        measured = run_single_group([spec], n_machines,
                                    mode=ExecutionMode.ISOLATED)
        rows.append((label, 100.0 * measured.cpu_utilization,
                     100.0 * measured.net_utilization))
    return Fig02Result(rows=rows)


def report(result: Fig02Result) -> str:
    """Render the paper-style rows for this exhibit."""
    table = format_table(
        ["config", "CPU util (%)", "Network util (%)"],
        [(label, f"{cpu:.1f}", f"{net:.1f}")
         for label, cpu, net in result.rows],
        title="Fig. 2 — single-job utilization (paper: 40-70% CPU with "
              "workload-dependent ratios, never both high)")
    return table


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(report(run()))
