"""§VI extensions: fault tolerance, all-reduce, multi-tenant noise.

The paper's discussion section sketches three directions beyond the
evaluated system; this driver exercises all three:

* **Fault tolerance** — "checkpointing (per epoch) and restart";
  machine failures crash whole groups, whose jobs restart from their
  last checkpoint.
* **All-reduce** — "its scheduling approach can be easily applied to
  other communication architecture such as all-reduce"; the cost model
  swaps PS pull/push for one ring all-reduce per iteration (with the
  full-replica memory cost that implies).
* **Multi-tenant interference** — "the system may show unstable
  performance occasionally due to interference (e.g., bursty traffics
  by other users)"; COMM subtasks are randomly hit by traffic spikes
  and the profiler's moving averages absorb them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.core.runtime import HarmonyRuntime, RunResult
from repro.experiments.common import scaled_workload
from repro.metrics.reporting import format_table
from repro.workloads.costmodel import CostModel


@dataclass
class ExtensionsResult:
    baseline: RunResult
    with_failures: RunResult
    failures_injected: int
    allreduce: RunResult
    with_interference: RunResult

    @property
    def failure_slowdown(self) -> float:
        return self.with_failures.makespan / self.baseline.makespan

    @property
    def interference_slowdown(self) -> float:
        return self.with_interference.makespan / self.baseline.makespan

    @property
    def allreduce_makespan_ratio(self) -> float:
        return self.allreduce.makespan / self.baseline.makespan


def run(scale: float = 0.5, seed: int = 2021, n_failures: int = 4,
        config: SimConfig = DEFAULT_SIM_CONFIG) -> ExtensionsResult:
    """Run the experiment; see the module docstring for
    the paper exhibit it reproduces."""
    workload, n_machines = scaled_workload(scale, seed)

    baseline = HarmonyRuntime(n_machines, workload, config=config).run()

    # Failures spread over the first two thirds of the baseline run.
    failure_times = list(np.linspace(0.2, 0.66, n_failures)
                         * baseline.makespan)
    failing = HarmonyRuntime(n_machines, workload, config=config,
                             failure_times=failure_times)
    with_failures = failing.run()

    allreduce = HarmonyRuntime(
        n_machines, workload, config=config,
        cost_model=CostModel(config.machine,
                             comm_architecture="allreduce"),
        scheduler_name="harmony-allreduce").run()

    noisy_config = replace(
        config, execution=replace(config.execution,
                                  comm_interference_probability=0.10,
                                  comm_interference_max=3.0))
    with_interference = HarmonyRuntime(n_machines, workload,
                                       config=noisy_config).run()

    return ExtensionsResult(
        baseline=baseline,
        with_failures=with_failures,
        failures_injected=failing.master.failures_injected,
        allreduce=allreduce,
        with_interference=with_interference)


def report(result: ExtensionsResult) -> str:
    """Render the paper-style rows for this exhibit."""
    rows = []
    for label, run_result in (
            ("baseline (PS)", result.baseline),
            (f"+ {result.failures_injected} machine failures",
             result.with_failures),
            ("all-reduce architecture", result.allreduce),
            ("+ 10% bursty interference", result.with_interference)):
        rows.append((label,
                     f"{run_result.makespan / 60:.0f}",
                     f"{len(run_result.finished)}",
                     f"{run_result.average_utilization('cpu'):.1%}"))
    lines = [format_table(
        ["configuration", "makespan (min)", "jobs finished",
         "CPU util"], rows,
        title="§VI extensions — fault tolerance, all-reduce, "
              "multi-tenant interference")]
    lines.append(
        f"failure slowdown {result.failure_slowdown:.2f}x, "
        f"interference slowdown {result.interference_slowdown:.2f}x, "
        f"all-reduce/PS makespan {result.allreduce_makespan_ratio:.2f}x")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(report(run()))
