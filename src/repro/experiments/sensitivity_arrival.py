"""§V-D: workload sensitivity to job arrival rates.

Poisson arrivals with mean inter-arrival time swept from 0 (all at
once, the main experiment) to 8 minutes, plus Google-trace-like bursty
windows.  Paper: speedups decline only mildly (2.11x/1.60x at 0 ->
2.01x/1.56x at 8 minutes; traces average 2.02x/1.57x).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.isolated import IsolatedRuntime
from repro.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.core.runtime import HarmonyRuntime
from repro.experiments.common import scaled_workload
from repro.metrics.reporting import format_table
from repro.workloads.arrivals import poisson_arrivals, with_arrival_times
from repro.workloads.traces import google_trace_arrivals


@dataclass
class ArrivalRow:
    label: str
    jct_speedup: float
    makespan_speedup: float


@dataclass
class SensitivityArrivalResult:
    rows: list[ArrivalRow]


def _measure(label: str, workload, n_machines: int,
             config: SimConfig) -> ArrivalRow:
    isolated = IsolatedRuntime(n_machines, workload, config=config).run()
    harmony = HarmonyRuntime(n_machines, workload, config=config).run()
    return ArrivalRow(label=label,
                      jct_speedup=isolated.mean_jct / harmony.mean_jct,
                      makespan_speedup=(isolated.makespan
                                        / harmony.makespan))


def run(scale: float = 1.0, seed: int = 2021,
        mean_arrival_minutes: tuple[float, ...] = (0.0, 4.0, 8.0),
        n_trace_windows: int = 2,
        config: SimConfig = DEFAULT_SIM_CONFIG) -> \
        SensitivityArrivalResult:
    base_workload, n_machines = scaled_workload(scale, seed)
    rows = []
    for mean_minutes in mean_arrival_minutes:
        times = poisson_arrivals(len(base_workload),
                                 mean_minutes * 60.0, seed=seed)
        workload = with_arrival_times(base_workload, times)
        rows.append(_measure(f"poisson {mean_minutes:.0f} min",
                             workload, n_machines, config))
    trace_rows = []
    for window in range(n_trace_windows):
        times = google_trace_arrivals(len(base_workload),
                                      mean_interarrival_seconds=120.0,
                                      window_index=window, seed=seed)
        workload = with_arrival_times(base_workload, times)
        trace_rows.append(_measure(f"trace window {window}",
                                   workload, n_machines, config))
    if trace_rows:
        rows.append(ArrivalRow(
            label="google traces (avg)",
            jct_speedup=float(np.mean([r.jct_speedup
                                       for r in trace_rows])),
            makespan_speedup=float(np.mean([r.makespan_speedup
                                            for r in trace_rows]))))
    return SensitivityArrivalResult(rows=rows)


def report(result: SensitivityArrivalResult) -> str:
    """Render the paper-style rows for this exhibit."""
    return format_table(
        ["arrival process", "JCT speedup", "makespan speedup"],
        [(r.label, f"{r.jct_speedup:.2f}", f"{r.makespan_speedup:.2f}")
         for r in result.rows],
        title="§V-D arrival sensitivity (paper: 2.11/1.60 at batch, "
              "2.01/1.56 at 8 min, 2.02/1.57 on traces)")


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(report(run()))
