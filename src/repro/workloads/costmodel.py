"""Ground-truth cost model: job physics on a given machine type.

This module answers, for a :class:`~repro.workloads.apps.JobSpec` run on
``m`` machines: how long is each subtask, how much memory is resident
per machine, how many bytes must be reloaded from disk per iteration.

It is the *simulated world*, not the scheduler's knowledge: Harmony only
ever sees the profiled metrics that the runtime measures (with noise) —
exactly as in the paper, where the scheduler works from runtime metrics
(§IV-B1) rather than from an oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.disk import DiskModel
from repro.cluster.network import NetworkModel
from repro.config import GB, MachineSpec
from repro.errors import WorkloadError
from repro.workloads.apps import JobSpec


@dataclass(frozen=True)
class IterationProfile:
    """Noise-free subtask durations of one iteration at a given DoP."""

    t_pull: float
    t_comp: float
    t_push: float

    @property
    def t_comm(self) -> float:
        """Total network-subtask time (PULL + PUSH, §IV-A)."""
        return self.t_pull + self.t_push

    @property
    def t_iteration(self) -> float:
        """Sequential iteration time of the job running alone."""
        return self.t_pull + self.t_comp + self.t_push

    @property
    def comp_ratio(self) -> float:
        """Computation time / iteration time (Fig. 9b's metric)."""
        total = self.t_iteration
        return self.t_comp / total if total > 0 else 0.0


class CostModel:
    """Job physics bound to one machine specification.

    ``comm_architecture`` selects how model synchronization happens:
    ``"ps"`` (the paper's focus — PULL and PUSH through parameter
    servers) or ``"allreduce"`` (the §VI extension — one ring
    all-reduce per iteration, no PULL, the model replicated on every
    worker).
    """

    def __init__(self, spec: MachineSpec | None = None,
                 network: NetworkModel | None = None,
                 disk: DiskModel | None = None,
                 comm_architecture: str = "ps"):
        if comm_architecture not in ("ps", "allreduce"):
            raise WorkloadError(
                f"unknown communication architecture "
                f"{comm_architecture!r}")
        self.spec = spec if spec is not None else MachineSpec()
        self.network = network if network is not None \
            else NetworkModel(self.spec)
        self.disk = disk if disk is not None else DiskModel(self.spec)
        self.comm_architecture = comm_architecture
        from repro.cluster.allreduce import AllReduceModel
        self._allreduce = AllReduceModel(self.spec)

    # -- subtask durations ----------------------------------------------

    def comp_seconds(self, job: JobSpec, m: int) -> float:
        """COMP duration on ``m`` machines (Eq. 2: T_cpu ∝ 1/m)."""
        self._check_dop(m)
        return job.cpu_work_machine_seconds / m

    def pull_seconds(self, job: JobSpec, m: int = 1) -> float:
        """PULL duration (zero under all-reduce: there are no servers
        to fetch from; synchronization is one fused COMM step)."""
        if self.comm_architecture == "allreduce":
            return 0.0
        return self.network.pull_seconds(job.model_gb * GB,
                                         job.app.traffic_fraction)

    def push_seconds(self, job: JobSpec, m: int = 1) -> float:
        """PUSH duration — or, under all-reduce, the whole ring step."""
        if self.comm_architecture == "allreduce":
            return self._allreduce.sync_seconds(
                job.model_gb * GB * job.app.traffic_fraction, m)
        return self.network.push_seconds(job.model_gb * GB,
                                         job.app.traffic_fraction)

    def profile(self, job: JobSpec, m: int) -> IterationProfile:
        """Noise-free subtask durations of one iteration at DoP ``m``."""
        return IterationProfile(t_pull=self.pull_seconds(job, m),
                                t_comp=self.comp_seconds(job, m),
                                t_push=self.push_seconds(job, m))

    # -- memory footprints (per machine) ---------------------------------

    def input_resident_bytes(self, job: JobSpec, m: int,
                             alpha: float = 0.0) -> float:
        """Memory-side input blocks per machine at disk ratio ``alpha``."""
        self._check_dop(m)
        self._check_alpha(alpha)
        return (job.input_gb * GB * job.app.memory_expansion
                * (1.0 - alpha) / m)

    def model_resident_bytes(self, job: JobSpec, m: int,
                             model_spilled: bool = False) -> float:
        """Model-state bytes resident per machine.

        PS: the server's 1/m partition plus the worker-side parameter
        cache.  All-reduce: a *full* model replica per worker — the
        price of the architecture.  When ``model_spilled`` is True (the
        §IV-C fallback), only the worker cache remains resident; the
        partition/replica lives on disk between the job's iterations.
        """
        self._check_dop(m)
        model_bytes = job.model_gb * GB
        cache = model_bytes * job.app.worker_cache_fraction
        if model_spilled:
            return cache
        if self.comm_architecture == "allreduce":
            return model_bytes + cache
        return model_bytes / m + cache

    def workspace_bytes(self, job: JobSpec, m: int,
                        alpha: float = 0.0) -> float:
        """Intermediate results generated while computing (§II-B)."""
        base = (self.input_resident_bytes(job, m, alpha)
                + job.model_gb * GB * job.app.worker_cache_fraction)
        return base * job.app.workspace_fraction

    def resident_bytes(self, job: JobSpec, m: int, alpha: float = 0.0,
                       model_spilled: bool = False) -> float:
        """Total resident bytes per machine for this job."""
        return (self.input_resident_bytes(job, m, alpha)
                + self.model_resident_bytes(job, m, model_spilled)
                + self.workspace_bytes(job, m, alpha))

    def memory_floor(self, job: JobSpec, alpha: float = 0.0,
                     target_pressure: float = 0.90,
                     max_machines: int = 10_000) -> int:
        """Smallest DoP at which the job fits in memory alone.

        Used by the isolated baseline (which cannot spill, alpha = 0)
        and by the scheduler's feasibility checks.
        """
        budget = self.spec.usable_memory_bytes * target_pressure
        for m in range(1, max_machines + 1):
            if self.resident_bytes(job, m, alpha) <= budget:
                return m
        raise WorkloadError(
            f"job {job.job_id} does not fit on {max_machines} machines")

    # -- disk traffic ------------------------------------------------------

    def reload_bytes_per_iteration(self, job: JobSpec, m: int,
                                   alpha: float) -> float:
        """Raw disk bytes each machine reloads per iteration (§IV-C)."""
        self._check_dop(m)
        self._check_alpha(alpha)
        return job.input_gb * GB * alpha / m

    def reload_seconds_per_iteration(self, job: JobSpec, m: int,
                                     alpha: float) -> float:
        return self.disk.read_seconds(
            self.reload_bytes_per_iteration(job, m, alpha))

    def checkpoint_bytes(self, job: JobSpec, m: int) -> float:
        """Model bytes per machine written when pausing the job."""
        self._check_dop(m)
        return job.model_gb * GB / m

    # -- validation --------------------------------------------------------

    @staticmethod
    def _check_dop(m: int) -> None:
        if m < 1:
            raise WorkloadError(f"DoP must be >= 1, got {m}")

    @staticmethod
    def _check_alpha(alpha: float) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise WorkloadError(f"alpha must be in [0, 1], got {alpha}")
