"""Table I of the paper: applications, datasets, and job specifications.

The four classical-ML applications and their datasets, with the input
and model sizes published in Table I.  Per-application *cost
coefficients* translate those sizes into per-iteration compute work,
communication volume, and memory footprints; they are calibrated so the
workload reproduces the published characteristics of Fig. 9 (iteration
times of 0–20 minutes and computation ratios spread across ~0.1–0.95 at
DoP 16) — see ``repro/workloads/costmodel.py`` for the physics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class AppSpec:
    """One ML application and its resource-cost coefficients.

    ``comp_machine_seconds_per_gb`` is the CPU work of one iteration per
    GB of input data, expressed in machine-seconds: a group of ``m``
    machines finishes the COMP step of a job in
    ``comp_machine_seconds_per_gb * input_gb * compute_scale / m``
    seconds (the paper's Eq. 2: ``T_cpu ∝ 1/m``).
    """

    name: str
    domain: str
    #: Machine-seconds of COMP work per GB of input per iteration.
    comp_machine_seconds_per_gb: float
    #: Fraction of the model actually moved per PULL (and per PUSH):
    #: sparse/partitioned access patterns move less than the full model.
    traffic_fraction: float
    #: Worker-side parameter cache as a fraction of the model size
    #: (Bösen-style systems only cache the rows touched by the current
    #: mini-batch, a small slice of multi-GB models).
    worker_cache_fraction: float = 0.05
    #: Working-set (intermediate results) fraction of resident data.
    workspace_fraction: float = 0.10
    #: In-memory expansion of the on-disk input (managed-runtime object
    #: overhead; the paper's system is JVM-based).
    memory_expansion: float = 1.5


@dataclass(frozen=True)
class DatasetSpec:
    """One dataset with the sizes published in Table I (in GBs)."""

    name: str
    input_gb: float
    model_gb: float


# --- Table I ----------------------------------------------------------
# Cost coefficients per application.  LDA's collapsed Gibbs sweep is far
# more CPU-heavy per input byte than the matrix workloads; Lasso's
# coordinate updates are the cheapest and move sparse deltas.

NMF = AppSpec(
    name="NMF", domain="recommendation",
    comp_machine_seconds_per_gb=30.0, traffic_fraction=1.0)
LDA = AppSpec(
    name="LDA", domain="topic-modeling",
    comp_machine_seconds_per_gb=400.0, traffic_fraction=0.8)
MLR = AppSpec(
    name="MLR", domain="classification",
    comp_machine_seconds_per_gb=40.0, traffic_fraction=1.0)
LASSO = AppSpec(
    name="Lasso", domain="regression",
    comp_machine_seconds_per_gb=20.0, traffic_fraction=0.5)

APPS: dict[str, AppSpec] = {app.name: app for app in (NMF, LDA, MLR, LASSO)}

#: Table I datasets, keyed by application name.
DATASETS: dict[str, tuple[DatasetSpec, ...]] = {
    "NMF": (DatasetSpec("Netflix64x", 45.6, 1.0),
            DatasetSpec("Netflix128x", 91.2, 5.0)),
    "LDA": (DatasetSpec("PubMed", 4.3, 2.1),
            DatasetSpec("NYTimes", 0.6, 1.1)),
    "MLR": (DatasetSpec("Synthetic78", 78.4, 12.0),
            DatasetSpec("Synthetic155", 155.0, 24.0)),
    "Lasso": (DatasetSpec("Synthetic78", 78.4, 12.0),
              DatasetSpec("Synthetic155", 155.0, 24.0)),
}


@dataclass(frozen=True)
class JobSpec:
    """One training job: an (app, dataset, hyper-parameters) tuple.

    ``compute_scale`` and ``model_scale`` encode the effect of the
    hyper-parameter choice (number of classes / topics / factor rank) on
    per-iteration compute work and on model size, relative to the
    dataset's published base model.  ``iterations`` is the number of
    iterations until the objective crosses its convergence threshold.
    """

    job_id: str
    app: AppSpec
    dataset: DatasetSpec
    compute_scale: float = 1.0
    model_scale: float = 1.0
    iterations: int = 50
    submit_time: float = 0.0

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise WorkloadError(
                f"job {self.job_id}: iterations must be positive")
        if self.compute_scale <= 0 or self.model_scale <= 0:
            raise WorkloadError(
                f"job {self.job_id}: scales must be positive")
        if self.submit_time < 0:
            raise WorkloadError(
                f"job {self.job_id}: negative submit time")

    # -- derived physical quantities ------------------------------------

    @property
    def cpu_work_machine_seconds(self) -> float:
        """Total COMP work of one iteration, in machine-seconds (W_j)."""
        return (self.app.comp_machine_seconds_per_gb
                * self.dataset.input_gb * self.compute_scale)

    @property
    def model_gb(self) -> float:
        """Effective model size under this hyper-parameter choice."""
        return self.dataset.model_gb * self.model_scale

    @property
    def input_gb(self) -> float:
        return self.dataset.input_gb

    @property
    def comm_gb_per_direction(self) -> float:
        """Bytes (in GB) each machine's NIC moves per PULL (= per PUSH)."""
        return self.model_gb * self.app.traffic_fraction

    def describe(self) -> str:
        return (f"{self.job_id}: {self.app.name}/{self.dataset.name} "
                f"cs={self.compute_scale:.2f} ms={self.model_scale:.2f} "
                f"iters={self.iterations}")


def job_key(spec: JobSpec) -> tuple[str, str]:
    """Stable (app, dataset) identity used in reports."""
    return (spec.app.name, spec.dataset.name)
