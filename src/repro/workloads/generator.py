"""Evaluation workload generation.

The paper's base workload is "4 applications each with 2 datasets and 10
different hyper-parameters, resulting [in] the 80 different (app,
dataset, hyper-params) tuples" (§V-B).  :class:`WorkloadGenerator`
produces that set (or a scaled version of it), with hyper-parameter
scales drawn so the workload matches the published Fig. 9
characteristics.  The §V-D sensitivity subsets (top / bottom 60 jobs by
computation ratio) are provided by :func:`comp_intensive_subset` and
:func:`comm_intensive_subset`.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import WorkloadError
from repro.sim.rand import RandomStreams
from repro.workloads.apps import APPS, DATASETS, JobSpec
from repro.workloads.costmodel import CostModel

#: The DoP at which the paper characterizes its workload (Fig. 9).
CHARACTERIZATION_DOP = 16


class WorkloadGenerator:
    """Deterministic generator for the paper's evaluation workloads."""

    def __init__(self, seed: int = 2021):
        self.seed = seed
        self._streams = RandomStreams(seed).spawn("workload")

    def base_workload(self, hyper_params_per_pair: int = 10) -> list[JobSpec]:
        """The 80-job base workload (or fewer with a smaller
        ``hyper_params_per_pair`` for scaled-down experiments)."""
        if hyper_params_per_pair < 1:
            raise WorkloadError("need at least one hyper-param per pair")
        rng = self._streams.stream("hyper-params")
        jobs: list[JobSpec] = []
        for app_name, app in sorted(APPS.items()):
            for dataset in DATASETS[app_name]:
                for index in range(hyper_params_per_pair):
                    # Hyper-parameters (classes / topics / rank) scale the
                    # compute work and the model size log-uniformly.
                    compute_scale = float(
                        2.0 ** rng.uniform(-1.0, 1.0))
                    model_scale = float(2.0 ** rng.uniform(-0.7, 0.7))
                    iterations = int(rng.integers(12, 41))
                    jobs.append(JobSpec(
                        job_id=f"{app_name}-{dataset.name}-h{index}",
                        app=app,
                        dataset=dataset,
                        compute_scale=compute_scale,
                        model_scale=model_scale,
                        iterations=iterations))
        return jobs

    def sized_workload(self, n_jobs: int) -> list[JobSpec]:
        """An arbitrary-size workload cycling over the Table I tuples
        (used for the §V-F scalability experiments with thousands of
        jobs)."""
        if n_jobs < 1:
            raise WorkloadError("need at least one job")
        per_pair = (n_jobs + 7) // 8
        jobs = self.base_workload(hyper_params_per_pair=per_pair)
        return jobs[:n_jobs]


def make_base_workload(seed: int = 2021,
                       hyper_params_per_pair: int = 10) -> list[JobSpec]:
    """Convenience wrapper: the paper's 80-job workload."""
    return WorkloadGenerator(seed).base_workload(hyper_params_per_pair)


def _sorted_by_comp_ratio(jobs: Sequence[JobSpec],
                          cost_model: CostModel | None = None,
                          dop: int = CHARACTERIZATION_DOP) -> list[JobSpec]:
    model = cost_model if cost_model is not None else CostModel()
    return sorted(jobs, key=lambda j: model.profile(j, dop).comp_ratio)


def comp_intensive_subset(jobs: Sequence[JobSpec], n: int = 60,
                          cost_model: CostModel | None = None) -> \
        list[JobSpec]:
    """The ``n`` most computation-heavy jobs (paper: top 60 of 80)."""
    if n > len(jobs):
        raise WorkloadError(f"asked for {n} of {len(jobs)} jobs")
    ordered = _sorted_by_comp_ratio(jobs, cost_model)
    return ordered[len(jobs) - n:]


def comm_intensive_subset(jobs: Sequence[JobSpec], n: int = 60,
                          cost_model: CostModel | None = None) -> \
        list[JobSpec]:
    """The ``n`` most communication-heavy jobs (paper: bottom 60 of 80)."""
    if n > len(jobs):
        raise WorkloadError(f"asked for {n} of {len(jobs)} jobs")
    ordered = _sorted_by_comp_ratio(jobs, cost_model)
    return ordered[:n]
