"""Workload substrate: Table I applications, the 80-job evaluation
workload, arrival processes, and the ground-truth iteration cost model.
"""

from repro.workloads.apps import (
    APPS,
    AppSpec,
    DATASETS,
    DatasetSpec,
    JobSpec,
    LASSO,
    LDA,
    MLR,
    NMF,
)
from repro.workloads.arrivals import (
    batch_arrivals,
    poisson_arrivals,
    with_arrival_times,
)
from repro.workloads.costmodel import CostModel, IterationProfile
from repro.workloads.generator import (
    WorkloadGenerator,
    comm_intensive_subset,
    comp_intensive_subset,
    make_base_workload,
)
from repro.workloads.traces import google_trace_arrivals, google_trace_windows

__all__ = [
    "APPS",
    "DATASETS",
    "AppSpec",
    "CostModel",
    "DatasetSpec",
    "IterationProfile",
    "JobSpec",
    "LASSO",
    "LDA",
    "MLR",
    "NMF",
    "WorkloadGenerator",
    "batch_arrivals",
    "comm_intensive_subset",
    "comp_intensive_subset",
    "google_trace_arrivals",
    "google_trace_windows",
    "make_base_workload",
    "poisson_arrivals",
    "with_arrival_times",
]
