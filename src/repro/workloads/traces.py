"""Google-cluster-trace-like arrival processes.

The paper extracts "10 job arrival processes randomly from different
time windows" of the Google cluster workload traces, noting that "the
traces have more diverse pattern of arrivals and job arrival spikes"
(§V-D).  The trace files themselves are not redistributable, so this
module generates synthetic processes with the two properties the paper
relies on: bursty spikes (jobs arriving in clumps) over a variable-rate
background — a standard doubly-stochastic (Markov-modulated Poisson)
approximation of datacenter submission behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


def google_trace_arrivals(n_jobs: int,
                          mean_interarrival_seconds: float = 120.0,
                          burstiness: float = 0.6,
                          window_index: int = 0,
                          seed: int = 2021) -> list[float]:
    """One synthetic trace window with bursty arrivals.

    ``window_index`` selects one of the "different time windows": each
    index derives an independent stream, mirroring the paper's ten
    random extractions.  ``burstiness`` in [0, 1) is the fraction of
    jobs arriving inside spikes.
    """
    if n_jobs < 0:
        raise WorkloadError(f"negative job count {n_jobs}")
    if not 0.0 <= burstiness < 1.0:
        raise WorkloadError(f"burstiness {burstiness} not in [0, 1)")
    if mean_interarrival_seconds <= 0:
        raise WorkloadError("mean inter-arrival time must be positive")
    if n_jobs == 0:
        return []

    rng = np.random.default_rng(
        np.random.SeedSequence([seed, 0x900913, window_index]))

    n_burst = int(round(n_jobs * burstiness))
    n_background = n_jobs - n_burst
    horizon = mean_interarrival_seconds * n_jobs

    # Background: homogeneous Poisson over the window.
    background = rng.uniform(0.0, horizon, size=n_background)

    # Spikes: a few clumps with tight intra-spike gaps.
    n_spikes = max(1, int(rng.integers(2, 6)))
    spike_centers = rng.uniform(0.0, horizon, size=n_spikes)
    spike_assignment = rng.integers(0, n_spikes, size=n_burst)
    spike_jitter = rng.exponential(mean_interarrival_seconds * 0.05,
                                   size=n_burst)
    spikes = spike_centers[spike_assignment] + spike_jitter

    times = np.sort(np.concatenate([background, spikes]))
    times = times - times[0]  # the first job opens the experiment
    return [float(t) for t in times]


def google_trace_windows(n_jobs: int, n_windows: int = 10,
                         mean_interarrival_seconds: float = 120.0,
                         seed: int = 2021) -> list[list[float]]:
    """The paper's "10 job arrival processes from different windows"."""
    if n_windows < 1:
        raise WorkloadError("need at least one window")
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xA11CE]))
    windows = []
    for index in range(n_windows):
        burstiness = float(rng.uniform(0.3, 0.8))
        windows.append(google_trace_arrivals(
            n_jobs,
            mean_interarrival_seconds=mean_interarrival_seconds,
            burstiness=burstiness,
            window_index=index,
            seed=seed))
    return windows
