"""Job arrival processes for the §V-D sensitivity experiments.

The paper submits jobs "with arrival times that follow a Poisson
distribution, increasing the mean job arrival time from 0 to 8 minutes";
mean 0 means all jobs arrive at once (the main §V-C experiment).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.apps import JobSpec


def batch_arrivals(n_jobs: int) -> list[float]:
    """All jobs submitted at time zero (the main experiment)."""
    if n_jobs < 0:
        raise WorkloadError(f"negative job count {n_jobs}")
    return [0.0] * n_jobs


def poisson_arrivals(n_jobs: int, mean_interarrival_seconds: float,
                     rng: np.random.Generator | None = None,
                     seed: int = 0) -> list[float]:
    """Arrival times of a Poisson process.

    ``mean_interarrival_seconds == 0`` degenerates to batch arrivals,
    matching the paper's "0 arrival time means we submit all jobs at
    once".
    """
    if n_jobs < 0:
        raise WorkloadError(f"negative job count {n_jobs}")
    if mean_interarrival_seconds < 0:
        raise WorkloadError("negative mean inter-arrival time")
    if mean_interarrival_seconds == 0:
        return batch_arrivals(n_jobs)
    generator = rng if rng is not None else np.random.default_rng(seed)
    gaps = generator.exponential(mean_interarrival_seconds, size=n_jobs)
    times = np.cumsum(gaps)
    times[0] = 0.0  # the first job opens the experiment
    return [float(t) for t in times]


def with_arrival_times(jobs: Sequence[JobSpec],
                       arrival_times: Sequence[float]) -> list[JobSpec]:
    """Jobs re-stamped with the given submit times (same order)."""
    if len(jobs) != len(arrival_times):
        raise WorkloadError(
            f"{len(jobs)} jobs but {len(arrival_times)} arrival times")
    stamped = []
    for job, when in zip(jobs, arrival_times, strict=True):
        if when < 0:
            raise WorkloadError(f"negative arrival time {when}")
        stamped.append(replace(job, submit_time=float(when)))
    return stamped
