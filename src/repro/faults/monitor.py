"""Master-side health monitoring (heartbeat failure detection).

Real Harmony masters cannot observe a crash directly: they notice that
a worker's heartbeats stopped.  :class:`HealthMonitor` models exactly
that — every machine beats while alive; a silenced machine is declared
dead once its last beat is older than ``timeout`` at a polling tick,
and the master's crash-recovery path is invoked with that detection
latency already paid.  Detection is therefore part of the measured
recovery time, as it is in production.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.errors import SimulationError
from repro.metrics.faults import FaultLog, FaultRecord
from repro.sim import Simulator


class HealthMonitor:
    """Polls heartbeats on the simulator clock and reports dead
    machines to the master."""

    def __init__(self, sim: Simulator, cluster: Cluster, master,
                 interval: float = 30.0, timeout: float = 90.0,
                 log: FaultLog | None = None):
        if interval <= 0 or timeout <= 0:
            raise SimulationError(
                f"heartbeat interval/timeout must be positive "
                f"(got {interval}/{timeout})")
        self.sim = sim
        self.cluster = cluster
        self.master = master
        self.interval = interval
        self.timeout = timeout
        self.log = log
        self._last_beat: dict[int, float] = {
            m.machine_id: sim.now for m in cluster.machines}
        self._silenced: dict[int, FaultRecord | None] = {}
        self._reported: set[int] = set()
        self._process = None
        self.detections = 0

    # -- injector interface --------------------------------------------

    def silence(self, machine_id: int,
                record: FaultRecord | None = None) -> None:
        """The machine died: its heartbeats stop from now on."""
        self._silenced[machine_id] = record

    def revive(self, machine_id: int) -> None:
        """The machine is back: heartbeats resume immediately."""
        self._silenced.pop(machine_id, None)
        self._reported.discard(machine_id)
        self._last_beat[machine_id] = self.sim.now

    # -- the monitoring loop -------------------------------------------

    def start(self) -> None:
        if self._process is not None:
            raise SimulationError("health monitor already started")
        self._process = self.sim.spawn(self._run(), name="health-monitor")

    def stop(self) -> None:
        if self._process is not None and self._process.alive:
            self._process.kill()
        self._process = None

    def _run(self):
        t0 = self.sim.now
        tick = 0
        while True:
            # k-th sweep at t0 + k * interval in closed form — the
            # accumulated ``now + interval`` alternative drifts off the
            # exact boundary after enough sweeps (see sim.Simulator.at).
            tick += 1
            yield self.sim.at(t0 + tick * self.interval)
            now = self.sim.now
            for machine_id in self._last_beat:
                if machine_id not in self._silenced:
                    self._last_beat[machine_id] = now
            for machine_id, record in list(self._silenced.items()):
                if machine_id in self._reported:
                    continue
                if now - self._last_beat[machine_id] < self.timeout:
                    continue
                self._reported.add(machine_id)
                self.detections += 1
                tracer = self.sim.tracer
                if tracer.enabled:
                    tracer.counter("faults.detected").add(1)
                    tracer.instant(
                        "fault-detected", cat="fault",
                        args={"machine": machine_id,
                              "latency": now - self._last_beat[machine_id]})
                if self.log is not None and record is not None:
                    self.log.crash_detected(record, at=now)
                self.master.on_machine_failure(machine_id,
                                               fault_record=record)
