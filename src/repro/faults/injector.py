"""Applies a :class:`~repro.faults.plan.FaultPlan` to a live simulation.

The injector schedules every planned event on the simulator clock and
translates it into the cluster model's terms:

* **machine crash** — the machine leaves service (failure ledger) and
  its heartbeats stop; the :class:`~repro.faults.monitor.HealthMonitor`
  detects the silence and triggers the master's crash-recovery path
  (checkpoint rollback → regroup on survivors → resume).  After the
  event's ``duration`` the machine is repaired and rejoins the pool.
  A downtime shorter than the heartbeat timeout goes undetected — a
  blip the master never reacts to, exactly as with real heartbeats.
* **machine slowdown** — the hosting group's COMP subtasks stretch by
  ``severity`` for ``duration`` seconds (lockstep workers advance at
  the straggler's pace).
* **network drop** — the hosting group's COMM subtasks stretch by
  ``severity`` for ``duration`` seconds (retransmissions).

Every applied event lands in the run's :class:`FaultLog` so recovery
time, lost iterations, and re-run work can be reported.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.errors import SimulationError
from repro.faults.monitor import HealthMonitor
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.metrics.faults import FaultLog, FaultRecord
from repro.sim import Simulator


class FaultInjector:
    """Binds a fault plan to a simulator / cluster / master triple."""

    def __init__(self, sim: Simulator, cluster: Cluster, master,
                 monitor: HealthMonitor, plan: FaultPlan,
                 log: FaultLog | None = None):
        self.sim = sim
        self.cluster = cluster
        self.master = master
        self.monitor = monitor
        self.plan = plan
        self.log = log if log is not None else FaultLog()
        self._installed = False
        #: Crash repairs scheduled but not yet applied — the runtime's
        #: stall watchdog waits for these before declaring a deadlock.
        self.pending_repairs = 0
        self._trace = sim.tracer if sim.tracer.enabled else None

    def install(self) -> None:
        """Schedule every planned event; call once, before running."""
        if self._installed:
            raise SimulationError("fault plan already installed")
        self._installed = True
        for event in self.plan:
            if not 0 <= event.machine_id < self.cluster.size:
                raise SimulationError(
                    f"fault targets unknown machine {event.machine_id} "
                    f"(cluster has {self.cluster.size})")
            self.sim.call_at(event.time,
                             lambda e=event: self._apply(e))

    # -- event application ---------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        if event.kind is FaultKind.MACHINE_CRASH:
            self._apply_crash(event)
        elif event.kind is FaultKind.MACHINE_SLOWDOWN:
            self._apply_window(event, cpu=True)
        elif event.kind is FaultKind.NETWORK_DROP:
            self._apply_window(event, cpu=False)
        else:  # pragma: no cover - enum is closed
            raise SimulationError(f"unknown fault kind {event.kind}")

    def _record(self, event: FaultEvent) -> FaultRecord:
        if self._trace is not None:
            self._trace.counter("faults.injected").add(1)
            self._trace.instant(
                event.kind.value, cat="fault",
                args={"machine": event.machine_id,
                      "severity": event.severity,
                      "duration": event.duration})
        return self.log.fault_injected(FaultRecord(
            time=self.sim.now, kind=event.kind.value,
            machine_id=event.machine_id, duration=event.duration,
            severity=event.severity))

    def _apply_crash(self, event: FaultEvent) -> None:
        record = self._record(event)
        self.cluster.mark_failed(event.machine_id)
        self.monitor.silence(event.machine_id, record)
        if event.duration > 0:
            self.pending_repairs += 1
            self.sim.call_in(event.duration,
                             lambda: self._repair(event.machine_id))

    def _repair(self, machine_id: int) -> None:
        self.pending_repairs -= 1
        if self._trace is not None:
            self._trace.counter("faults.repaired").add(1)
            self._trace.instant("repair", cat="fault",
                                args={"machine": machine_id})
        self.cluster.restore_machine(machine_id)
        self.monitor.revive(machine_id)
        self.master.machine_repaired(machine_id)

    def _apply_window(self, event: FaultEvent, cpu: bool) -> None:
        record = self._record(event)
        group = self._owning_group(event.machine_id)
        if group is None or event.duration <= 0:
            return  # free machine: the fault strikes idle hardware
        record.group_id = group.group_id
        record.job_ids = group.job_ids
        factor = event.severity
        if cpu:
            group.apply_cpu_slowdown(factor)
            clear = lambda: group.clear_cpu_slowdown(factor)  # noqa: E731
        else:
            group.apply_net_penalty(factor)
            clear = lambda: group.clear_net_penalty(factor)  # noqa: E731
        self.sim.call_in(event.duration, clear)

    def _owning_group(self, machine_id: int):
        owner = self.cluster.owner_of(machine_id)
        if owner is None:
            return None
        return self.master.groups.get(owner)
