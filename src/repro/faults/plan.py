"""Seeded fault plans for the cluster simulator.

A :class:`FaultPlan` is a deterministic, time-ordered list of fault
events — machine crashes, machine slowdowns (stragglers), and transient
network drops — generated from a seed through the simulation's named
random streams, so the same seed always reproduces the identical event
timeline (and therefore an identical simulated run).
"""

from __future__ import annotations

import enum
from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.rand import RandomStreams


class FaultKind(enum.Enum):
    """The fault classes the injector knows how to apply."""

    #: The machine dies; its group crashes and the machine stays out of
    #: service for ``duration`` seconds before rejoining the pool.
    MACHINE_CRASH = "machine_crash"
    #: The machine straggles: every COMP subtask of the hosting group
    #: stretches by ``severity`` for ``duration`` seconds (lockstep
    #: workers advance at the slowest machine's pace).
    MACHINE_SLOWDOWN = "machine_slowdown"
    #: The machine's link drops packets: COMM subtasks of the hosting
    #: group stretch by ``severity`` (retransmits) for ``duration``
    #: seconds.
    NETWORK_DROP = "network_drop"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    time: float
    kind: FaultKind
    machine_id: int
    #: Window length (slowdown/drop) or machine downtime (crash).
    duration: float = 0.0
    #: Multiplicative slowdown of the affected subtasks (ignored for
    #: crashes).
    severity: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise SimulationError(f"fault at negative time {self.time}")
        if self.duration < 0:
            raise SimulationError(
                f"fault duration must be >= 0, got {self.duration}")
        if self.kind is not FaultKind.MACHINE_CRASH and self.severity <= 1.0:
            raise SimulationError(
                f"{self.kind.value} severity must exceed 1.0 "
                f"(got {self.severity})")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, time-ordered fault schedule."""

    events: tuple[FaultEvent, ...]
    seed: int | None = None

    def __post_init__(self) -> None:
        times = [event.time for event in self.events]
        if times != sorted(times):
            object.__setattr__(
                self, "events",
                tuple(sorted(self.events, key=lambda e: e.time)))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of_kind(self, kind: FaultKind) -> tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.kind is kind)

    def describe(self) -> str:
        lines = [f"FaultPlan: {len(self.events)} events"
                 + (f" (seed {self.seed})" if self.seed is not None
                    else "")]
        for event in self.events:
            lines.append(
                f"  t={event.time:9.1f}s {event.kind.value:17s} "
                f"machine={event.machine_id} dur={event.duration:.0f}s "
                f"sev={event.severity:.1f}")
        return "\n".join(lines)

    # -- construction --------------------------------------------------

    @staticmethod
    def build(events: Iterable[FaultEvent],
              seed: int | None = None) -> "FaultPlan":
        return FaultPlan(events=tuple(events), seed=seed)

    @staticmethod
    def generate(seed: int, n_machines: int, horizon_seconds: float,
                 crash_rate_per_hour: float = 0.0,
                 slowdown_rate_per_hour: float = 0.0,
                 drop_rate_per_hour: float = 0.0,
                 crash_downtime_seconds: float = 1800.0,
                 slowdown_seconds: float = 900.0,
                 slowdown_severity: float = 3.0,
                 drop_seconds: float = 120.0,
                 drop_severity: float = 2.0) -> "FaultPlan":
        """A seeded Poisson fault schedule over ``[0, horizon_seconds)``.

        Each fault class arrives as an independent Poisson process
        (exponential inter-arrival at the given cluster-wide rate) and
        strikes a uniformly random machine.  All draws go through
        dedicated :class:`~repro.sim.rand.RandomStreams` streams, so the
        plan is a pure function of its arguments.
        """
        if n_machines < 1:
            raise SimulationError(f"need >= 1 machine, got {n_machines}")
        if horizon_seconds <= 0:
            raise SimulationError(
                f"horizon must be positive, got {horizon_seconds}")
        streams = RandomStreams(seed).spawn("fault-plan")
        events: list[FaultEvent] = []

        def arrivals(name: str, rate_per_hour: float) -> list[float]:
            if rate_per_hour <= 0:
                return []
            rng = streams.stream(f"arrivals:{name}")
            times = []
            t = 0.0
            mean_gap = 3600.0 / rate_per_hour
            while True:
                t += float(rng.exponential(mean_gap))
                if t >= horizon_seconds:
                    return times
                times.append(t)

        def target(name: str) -> int:
            return int(streams.stream(f"target:{name}").integers(
                0, n_machines))

        for t in arrivals("crash", crash_rate_per_hour):
            events.append(FaultEvent(
                time=t, kind=FaultKind.MACHINE_CRASH,
                machine_id=target("crash"),
                duration=crash_downtime_seconds))
        for t in arrivals("slowdown", slowdown_rate_per_hour):
            events.append(FaultEvent(
                time=t, kind=FaultKind.MACHINE_SLOWDOWN,
                machine_id=target("slowdown"),
                duration=slowdown_seconds, severity=slowdown_severity))
        for t in arrivals("drop", drop_rate_per_hour):
            events.append(FaultEvent(
                time=t, kind=FaultKind.NETWORK_DROP,
                machine_id=target("drop"),
                duration=drop_seconds, severity=drop_severity))
        events.sort(key=lambda e: (e.time, e.kind.value, e.machine_id))
        return FaultPlan(events=tuple(events), seed=seed)
