"""Fault injection and recovery (§VI fault tolerance, production-ized).

Seeded :class:`FaultPlan` schedules of machine crashes, stragglers, and
transient network drops; a :class:`FaultInjector` that applies them to
the cluster simulator; and a heartbeat :class:`HealthMonitor` through
which the master detects dead machines and drives the pause →
checkpoint → regroup → resume recovery path.  Recovery accounting lives
in :mod:`repro.metrics.faults`.
"""

from repro.faults.injector import FaultInjector
from repro.faults.monitor import HealthMonitor
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "HealthMonitor",
]
