"""Per-group memory accounting and the managed-runtime pressure model.

A :class:`MemoryLedger` tracks, for one set of machines, how many bytes
each resident component (a job's in-memory input blocks, its model
partition, its working set) occupies *per machine*.  From the resulting
pressure ratio it derives the GC inflation applied to COMP subtasks and
detects out-of-memory failures — the two memory failure modes the paper
attributes to co-location (§II-B challenge 3, Fig. 4, §IV-C).
"""

from __future__ import annotations

from repro.config import GB, GCModel, MachineSpec
from repro.errors import OutOfMemoryError


class MemoryLedger:
    """Memory accounting for one machine group.

    All quantities are per machine; the paper's groups are symmetric
    (every machine hosts one worker and one server, and data/model are
    partitioned evenly), so a single per-machine figure suffices.
    """

    def __init__(self, spec: MachineSpec, gc_model: GCModel | None = None):
        self.spec = spec
        self.gc_model = gc_model if gc_model is not None else GCModel()
        self._components: dict[tuple[str, str], float] = {}

    # -- bookkeeping ----------------------------------------------------

    def set_component(self, job_id: str, component: str,
                      bytes_per_machine: float) -> None:
        """Declare that ``job_id``'s ``component`` occupies the given
        number of bytes on every machine of the group."""
        if bytes_per_machine < 0:
            raise ValueError(
                f"negative resident size for {job_id}/{component}")
        if bytes_per_machine == 0:
            self._components.pop((job_id, component), None)
        else:
            self._components[(job_id, component)] = bytes_per_machine

    def remove_job(self, job_id: str) -> None:
        """Drop every component belonging to ``job_id``."""
        for key in [k for k in self._components if k[0] == job_id]:
            del self._components[key]

    def job_resident_bytes(self, job_id: str) -> float:
        return sum(v for (jid, _), v in self._components.items()
                   if jid == job_id)

    # -- derived quantities ----------------------------------------------

    @property
    def resident_bytes(self) -> float:
        """Total resident bytes per machine."""
        return sum(self._components.values())

    @property
    def pressure(self) -> float:
        """Memory-pressure ratio rho = resident / usable capacity."""
        return self.resident_bytes / self.spec.usable_memory_bytes

    def gc_inflation(self) -> float:
        """Multiplicative COMP-subtask slowdown at the current pressure."""
        return self.gc_model.inflation(self.pressure)

    def is_oom(self) -> bool:
        return self.gc_model.is_oom(self.pressure)

    def check_oom(self) -> None:
        """Raise :class:`OutOfMemoryError` if over capacity."""
        if self.is_oom():
            job_ids = tuple(sorted({jid for jid, _ in self._components}))
            raise OutOfMemoryError(
                f"resident {self.resident_bytes / GB:.1f} GB exceeds "
                f"usable {self.spec.usable_memory_gb:.1f} GB "
                f"(jobs: {', '.join(job_ids)})",
                job_ids=job_ids,
                resident_gb=self.resident_bytes / GB,
                capacity_gb=self.spec.usable_memory_gb)

    def headroom_bytes(self) -> float:
        """Bytes per machine still available before OOM."""
        return max(0.0, self.spec.usable_memory_bytes - self.resident_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<MemoryLedger {self.resident_bytes / GB:.2f}"
                f"/{self.spec.usable_memory_gb:.1f} GB "
                f"rho={self.pressure:.2f}>")
