"""Network transfer-time model.

In the paper's deployment every machine hosts one worker and one server,
and the model is partitioned evenly across the servers.  Each worker
therefore pulls the whole model (gathered from all servers) and pushes a
full gradient every iteration, moving ~``2 x traffic_fraction x model``
bytes through each machine's NIC regardless of the group size — which is
why the paper treats ``T_net`` as independent of the DoP (§IV-B2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MachineSpec


@dataclass(frozen=True)
class NetworkModel:
    """Converts per-iteration communication volume into COMM durations."""

    spec: MachineSpec
    #: Protocol efficiency: achievable goodput as a fraction of line rate
    #: (framing, RPC overheads, imperfect overlap inside a COMM subtask).
    efficiency: float = 0.85
    #: Extra time factor for (de)serialization that could not be moved
    #: out of the COMM subtask (the paper minimizes but cannot null it).
    serialization_overhead: float = 0.05

    @property
    def effective_bps(self) -> float:
        return self.spec.network_bps * self.efficiency

    def transfer_seconds(self, n_bytes: float) -> float:
        """Time for one NIC to move ``n_bytes``."""
        if n_bytes < 0:
            raise ValueError(f"negative transfer size {n_bytes}")
        return (n_bytes / self.effective_bps) * \
            (1.0 + self.serialization_overhead)

    def pull_seconds(self, model_bytes: float,
                     traffic_fraction: float = 1.0) -> float:
        """Duration of a PULL subtask for a model of ``model_bytes``.

        ``traffic_fraction`` scales for apps that only fetch the model
        rows relevant to the local data partition (e.g. NMF factors).
        """
        return self.transfer_seconds(model_bytes * traffic_fraction)

    def push_seconds(self, model_bytes: float,
                     traffic_fraction: float = 1.0) -> float:
        """Duration of a PUSH subtask (gradients are model-sized)."""
        return self.transfer_seconds(model_bytes * traffic_fraction)
