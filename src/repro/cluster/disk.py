"""Disk bandwidth model for data spill/reload and checkpointing.

Dynamic data reloading (§IV-C) streams the disk-side fraction of a job's
input blocks back into memory while other jobs compute; checkpoint /
restore during migration (§IV-B4) writes and reads the model.  Both are
sequential-streaming workloads, so a simple bandwidth model suffices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MachineSpec


@dataclass(frozen=True)
class DiskModel:
    """Converts byte volumes into disk-read/write durations."""

    spec: MachineSpec
    #: Deserialization expands effective read time: blocks read back from
    #: disk must be decoded before compute can touch them (§IV-C calls
    #: this the reload overhead).
    deserialization_overhead: float = 0.25

    def read_seconds(self, n_bytes: float) -> float:
        """Time for one machine to reload ``n_bytes`` from disk."""
        if n_bytes < 0:
            raise ValueError(f"negative read size {n_bytes}")
        return (n_bytes / self.spec.disk_read_bps) * \
            (1.0 + self.deserialization_overhead)

    def write_seconds(self, n_bytes: float) -> float:
        """Time for one machine to spill/checkpoint ``n_bytes`` to disk."""
        if n_bytes < 0:
            raise ValueError(f"negative write size {n_bytes}")
        return n_bytes / self.spec.disk_write_bps

    def checkpoint_seconds(self, model_bytes_per_machine: float) -> float:
        """Checkpoint a job's model partition (pause path, §IV-B4)."""
        return self.write_seconds(model_bytes_per_machine)

    def restore_seconds(self, model_bytes_per_machine: float) -> float:
        """Restore a checkpointed model partition (resume path)."""
        return self.read_seconds(model_bytes_per_machine)
