"""Cluster substrate: machines, allocation ledger, memory/network/disk models."""

from repro.cluster.cluster import Cluster
from repro.cluster.disk import DiskModel
from repro.cluster.machine import Machine
from repro.cluster.memory import MemoryLedger
from repro.cluster.network import NetworkModel

__all__ = ["Cluster", "DiskModel", "Machine", "MemoryLedger", "NetworkModel"]
