"""Cluster inventory with an owner-tagged allocation ledger.

The Harmony master, as well as the baseline schedulers, acquire machines
through this ledger.  Allocations are tagged with an owner string (a job
group id or a job id) so that double-allocation and foreign releases are
detected immediately rather than corrupting an experiment silently.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.cluster.machine import Machine
from repro.config import MachineSpec
from repro.errors import ClusterError


def split_machine_counts(total_machines: int,
                         n_cells: int) -> tuple[int, ...]:
    """Near-equal machine counts per scheduling cell, deterministically.

    The canonical split used by the cluster-of-cells sharding layer
    (:mod:`repro.shard`): the first ``total % n_cells`` cells take one
    extra machine, so the result depends only on the two integers —
    never on iteration order.  Every cell must end up with at least
    one machine.
    """
    if n_cells < 1:
        raise ClusterError(f"need >= 1 cell, got {n_cells}")
    if total_machines < n_cells:
        raise ClusterError(
            f"{n_cells} cells need >= {n_cells} machines, got "
            f"{total_machines}")
    base, extra = divmod(total_machines, n_cells)
    return tuple(base + 1 if index < extra else base
                 for index in range(n_cells))


class Cluster:
    """A homogeneous pool of machines (the paper uses 100 m4.2xlarge)."""

    def __init__(self, n_machines: int, spec: MachineSpec | None = None):
        if n_machines <= 0:
            raise ClusterError(f"cluster needs >= 1 machine, got {n_machines}")
        self.spec = spec if spec is not None else MachineSpec()
        self.machines = tuple(Machine(i, self.spec)
                              for i in range(n_machines))
        self._free: list[int] = list(range(n_machines))
        self._owner_of: dict[int, str] = {}
        #: Machines out of service (crashed, not yet repaired).  A
        #: failed machine is never handed out by :meth:`allocate`; if it
        #: was owned when it failed, the owner's eventual release parks
        #: it here instead of returning it to the free pool.
        self._failed: set[int] = set()

    # -- inspection ----------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.machines)

    @property
    def n_free(self) -> int:
        return len(self._free)

    @property
    def n_allocated(self) -> int:
        return self.size - self.n_free

    @property
    def n_failed(self) -> int:
        return len(self._failed)

    def is_failed(self, machine_id: int) -> bool:
        if not 0 <= machine_id < self.size:
            raise ClusterError(f"unknown machine id {machine_id}")
        return machine_id in self._failed

    def cell_sizes(self, n_cells: int) -> tuple[int, ...]:
        """This pool's machine counts when split into ``n_cells``
        scheduling cells (:func:`split_machine_counts`)."""
        return split_machine_counts(self.size, n_cells)

    def owned_by(self, owner: str) -> tuple[int, ...]:
        """Machine ids currently held by ``owner``."""
        return tuple(sorted(mid for mid, who in self._owner_of.items()
                            if who == owner))

    def owner_of(self, machine_id: int) -> str | None:
        """Current owner of a machine, or None when it is free."""
        if not 0 <= machine_id < self.size:
            raise ClusterError(f"unknown machine id {machine_id}")
        return self._owner_of.get(machine_id)

    def owners(self) -> dict[str, int]:
        """Mapping of owner -> machine count."""
        counts: dict[str, int] = {}
        for who in self._owner_of.values():
            counts[who] = counts.get(who, 0) + 1
        return counts

    # -- allocation ----------------------------------------------------

    def allocate(self, n: int, owner: str) -> tuple[int, ...]:
        """Take ``n`` free machines for ``owner``; returns their ids."""
        if n <= 0:
            raise ClusterError(f"allocation size must be positive, got {n}")
        if n > self.n_free:
            raise ClusterError(
                f"owner {owner!r} requested {n} machines, only "
                f"{self.n_free} free")
        taken = [self._free.pop() for _ in range(n)]
        for mid in taken:
            self._owner_of[mid] = owner
        return tuple(sorted(taken))

    def release(self, machine_ids: Iterable[int], owner: str) -> None:
        """Return machines to the free pool; ids must belong to ``owner``."""
        ids = list(machine_ids)
        for mid in ids:
            actual = self._owner_of.get(mid)
            if actual != owner:
                raise ClusterError(
                    f"machine {mid} is owned by {actual!r}, not {owner!r}")
        for mid in ids:
            del self._owner_of[mid]
            if mid not in self._failed:
                self._free.append(mid)

    def release_all(self, owner: str) -> int:
        """Release every machine held by ``owner``; returns the count."""
        ids = self.owned_by(owner)
        if ids:
            self.release(ids, owner)
        return len(ids)

    # -- failure ledger (repro.faults) ---------------------------------

    def mark_failed(self, machine_id: int) -> None:
        """Take a machine out of service (a crash, §VI fault tolerance).

        A free machine leaves the free pool immediately; an owned
        machine keeps its owner (the group still references it) but will
        not return to the pool when released.  Idempotent.
        """
        if not 0 <= machine_id < self.size:
            raise ClusterError(f"unknown machine id {machine_id}")
        if machine_id in self._failed:
            return
        self._failed.add(machine_id)
        if machine_id in self._free:
            self._free.remove(machine_id)

    def restore_machine(self, machine_id: int) -> None:
        """Return a repaired machine to service (and to the free pool
        unless some owner still holds it).  Idempotent."""
        if not 0 <= machine_id < self.size:
            raise ClusterError(f"unknown machine id {machine_id}")
        if machine_id not in self._failed:
            return
        self._failed.discard(machine_id)
        if machine_id not in self._owner_of:
            self._free.append(machine_id)

    def reassign(self, machine_ids: Sequence[int], old_owner: str,
                 new_owner: str) -> None:
        """Move machines between owners without a release/allocate cycle
        (used during regrouping so counts never transiently exceed the
        cluster size)."""
        for mid in machine_ids:
            actual = self._owner_of.get(mid)
            if actual != old_owner:
                raise ClusterError(
                    f"machine {mid} is owned by {actual!r}, not {old_owner!r}")
        for mid in machine_ids:
            self._owner_of[mid] = new_owner

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Cluster {self.n_allocated}/{self.size} allocated>"
