"""A single cluster machine.

The paper co-locates one PS server and one worker on every machine
(§II-A, §V-B), so a :class:`Machine` is the unit of allocation — "degree
of parallelism" (DoP) of a job group equals its machine count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import MachineSpec


@dataclass(frozen=True)
class Machine:
    """One machine in the cluster inventory."""

    machine_id: int
    spec: MachineSpec = field(default_factory=MachineSpec)

    @property
    def cores(self) -> int:
        return self.spec.cores

    @property
    def memory_gb(self) -> float:
        return self.spec.memory_gb

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Machine {self.machine_id}>"
