"""All-reduce communication model (the paper's §VI extension).

"Although Harmony focuses on the PS architecture in this paper, its
scheduling approach can be easily applied to other communication
architecture such as all-reduce, because Harmony does not care how
exactly communication is done and only cares that there are distinct
computation and communication steps."

A ring all-reduce over ``m`` workers moves ``2 (m-1)/m`` times the
model per NIC and has no pull/push asymmetry: one COMM subtask per
iteration instead of two.  Unlike the PS architecture, its COMM time
*does* depend (mildly) on the group size — which Harmony's profiling
handles transparently because metrics are re-measured after every
regrouping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MachineSpec


@dataclass(frozen=True)
class AllReduceModel:
    """Ring all-reduce timing for one synchronization step."""

    spec: MachineSpec
    #: Protocol efficiency, as in the PS network model.
    efficiency: float = 0.85
    #: Per-chunk latency overhead of each of the 2(m-1) ring steps.
    step_latency_seconds: float = 0.005

    @property
    def effective_bps(self) -> float:
        return self.spec.network_bps * self.efficiency

    def sync_seconds(self, model_bytes: float, m: int) -> float:
        """Duration of one all-reduce over ``m`` workers.

        Ring all-reduce: every NIC sends and receives
        ``2 (m-1)/m x model_bytes``, plus per-step latency.
        """
        if m < 1:
            raise ValueError(f"need >= 1 worker, got {m}")
        if model_bytes < 0:
            raise ValueError(f"negative model size {model_bytes}")
        if m == 1:
            return 0.0  # purely local aggregation
        volume = 2.0 * (m - 1) / m * model_bytes
        return (volume / self.effective_bps
                + 2.0 * (m - 1) * self.step_latency_seconds)
