"""Command-line entry point: run any paper experiment by name.

Usage::

    python -m repro --list
    python -m repro fig10_main
    python -m repro fig10_main --scale 0.25 --seed 7
    python -m repro all --scale 0.25
    python -m repro check --seed 7      # correctness harness (repro.check)
    python -m repro lint                # harmonylint (repro.analysis)
    python -m repro scale --cells 1,8   # sharded sweep (repro.shard)
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro import experiments

#: Driver name -> module; kept explicit so --list output is curated.
DRIVERS = {
    "fig02_single_job": experiments.fig02_single_job,
    "fig03_dop_sweep": experiments.fig03_dop_sweep,
    "fig04_naive_colocation": experiments.fig04_naive_colocation,
    "fig09_workload_cdf": experiments.fig09_workload_cdf,
    "fig10_main": experiments.fig10_main,
    "fig11_util_timeline": experiments.fig11_util_timeline,
    "fig12_group_distributions": experiments.fig12_group_distributions,
    "fig13_model_accuracy": experiments.fig13_model_accuracy,
    "fig14_oracle": experiments.fig14_oracle,
    "ablation": experiments.ablation,
    "sensitivity_ratio": experiments.sensitivity_ratio,
    "sensitivity_arrival": experiments.sensitivity_arrival,
    "scalability": experiments.scalability,
    "reloading": experiments.reloading,
    "local_validation": experiments.local_validation,
    "granularity_validation": experiments.granularity_validation,
    "extensions": experiments.extensions,
    "design_ablations": experiments.design_ablations,
    "trace_demo": experiments.trace_demo,
}


def _run_driver(name: str, scale: float | None, seed: int | None) -> None:
    module = DRIVERS[name]
    kwargs = {}
    signature = inspect.signature(module.run)
    if scale is not None and "scale" in signature.parameters:
        kwargs["scale"] = scale
    if seed is not None and "seed" in signature.parameters:
        kwargs["seed"] = seed
    # harmony: allow[DET001] real elapsed-time report for the CLI footer
    started = time.perf_counter()
    result = module.run(**kwargs)
    # harmony: allow[DET001] real elapsed-time report for the CLI footer
    elapsed = time.perf_counter() - started
    print(module.report(result))
    print(f"[{name} completed in {elapsed:.1f}s]")


#: Subcommands with their own option sets, dispatched before argparse.
SUBCOMMANDS = {
    "check": ("repro.check.cli",
              "seeded invariant checker / differential harness "
              "(repro.check)"),
    "lint": ("repro.analysis.cli",
             "harmonylint determinism & simulation-safety static "
             "analyzer (repro.analysis)"),
    "tournament": ("repro.experiments.tournament",
                   "round-robin scheduler tournament over the policy "
                   "registry (repro.policies)"),
    "scale": ("repro.shard.cli",
              "sharded cells x cluster-size scalability sweep "
              "(repro.shard)"),
}


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] in SUBCOMMANDS:
        import importlib
        module_name, _ = SUBCOMMANDS[argv[0]]
        submain = importlib.import_module(module_name).main
        return submain(argv[1:])
    epilog = "subcommands:\n" + "\n".join(
        f"  {name:8s} {summary}"
        for name, (_, summary) in SUBCOMMANDS.items()) + (
        "\n  <experiment>  any experiment name below; "
        "see --list for the full set")
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the Harmony reproduction's experiments.",
        epilog=epilog,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("driver", nargs="?",
                        help="experiment name, or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload/cluster scale in (0, 1] "
                             "(1.0 = the paper's 80 jobs/100 machines)")
    parser.add_argument("--seed", type=int, default=None,
                        help="workload/simulation seed")
    args = parser.parse_args(argv)

    if args.list or args.driver is None:
        print("available experiments:")
        for name, module in DRIVERS.items():
            summary = (module.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:26s} {summary}")
        for name, (_, summary) in SUBCOMMANDS.items():
            print(f"  {name:26s} {summary}")
        return 0

    if args.driver == "all":
        for name in DRIVERS:
            print(f"\n=== {name} ===")
            _run_driver(name, args.scale, args.seed)
        return 0

    if args.driver not in DRIVERS:
        print(f"unknown experiment {args.driver!r}; "
              "use --list to see the options", file=sys.stderr)
        return 2
    _run_driver(args.driver, args.scale, args.seed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
