"""The PS-trainable model interface.

All four workloads expose the same three-step shape so the runtime can
decompose them into subtasks mechanically (§IV-A):

* ``init_params`` — the model the servers host,
* ``compute`` — the COMP subtask: given pulled parameters and a local
  data partition, produce additive parameter deltas and the objective,
* the PULL/PUSH around it are owned by the PS client.
"""

from __future__ import annotations

import abc
from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np


@dataclass
class TrainState:
    """Mutable per-worker training state (learning-rate schedule etc.)."""

    iteration: int = 0
    learning_rate: float = 0.1
    extras: dict = field(default_factory=dict)


class PSTrainable(abc.ABC):
    """A model trainable through the PS push/pull API."""

    #: Human-readable application name (matches Table I).
    name: str = "model"

    @abc.abstractmethod
    def init_params(self, rng: np.random.Generator) -> \
            dict[str, np.ndarray]:
        """Initial parameter values, to be installed on the servers."""

    @abc.abstractmethod
    def compute(self, params: Mapping[str, np.ndarray],
                partition: dict, state: TrainState) -> \
            tuple[dict[str, np.ndarray], float]:
        """One COMP subtask on a local data partition.

        Returns ``(deltas, objective)`` where ``deltas`` are additive
        parameter updates and ``objective`` is the local value of the
        training objective (lower is better for losses; LDA returns the
        negative log-likelihood so "lower is better" holds everywhere).
        """

    def objective_name(self) -> str:
        """Label of the tracked objective (paper: "e.g., log-likelihood
        for LDA, and L2-loss for NMF/MLR/Lasso")."""
        return "loss"
