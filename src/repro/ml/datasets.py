"""Synthetic dataset generators.

Stand-ins for the paper's datasets (Netflix ratings, PubMed/NYTimes
bags-of-words, Bösen's synthetic classification/regression script —
Table I), shaped so each workload's access pattern and objective
behave like the real thing at example scale.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def make_classification(n_samples: int, n_features: int, n_classes: int,
                        seed: int = 0, noise: float = 0.1) -> \
        tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Linearly separable-ish multiclass data (the MLR workload).

    Returns ``(X, y, true_W)``; labels are argmax of a noisy linear
    score, like Bösen's synthetic generator.
    """
    if min(n_samples, n_features, n_classes) < 1:
        raise WorkloadError("classification dims must be positive")
    rng = _rng(seed)
    true_w = rng.normal(0.0, 1.0, size=(n_features, n_classes))
    features = rng.normal(0.0, 1.0, size=(n_samples, n_features))
    scores = features @ true_w + noise * rng.normal(
        size=(n_samples, n_classes))
    labels = np.argmax(scores, axis=1)
    return features, labels, true_w


def make_regression(n_samples: int, n_features: int, sparsity: float = 0.9,
                    seed: int = 0, noise: float = 0.05) -> \
        tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sparse linear regression data (the Lasso workload).

    ``sparsity`` is the fraction of zero coefficients in the true model.
    """
    if not 0.0 <= sparsity < 1.0:
        raise WorkloadError(f"sparsity {sparsity} not in [0, 1)")
    rng = _rng(seed)
    true_w = rng.normal(0.0, 1.0, size=n_features)
    mask = rng.random(n_features) < sparsity
    true_w[mask] = 0.0
    features = rng.normal(0.0, 1.0, size=(n_samples, n_features))
    targets = features @ true_w + noise * rng.normal(size=n_samples)
    return features, targets, true_w


def make_ratings(n_users: int, n_items: int, rank: int = 8,
                 density: float = 0.05, seed: int = 0) -> \
        tuple[np.ndarray, np.ndarray]:
    """A sparse non-negative ratings matrix (the NMF workload).

    Returns ``(rows, data)`` where ``rows`` is an ``(nnz, 2)`` int array
    of (user, item) indices and ``data`` the observed ratings, generated
    from a random non-negative low-rank factorization (Netflix-like).
    """
    if not 0.0 < density <= 1.0:
        raise WorkloadError(f"density {density} not in (0, 1]")
    rng = _rng(seed)
    users = rng.gamma(2.0, 0.5, size=(n_users, rank))
    items = rng.gamma(2.0, 0.5, size=(n_items, rank))
    nnz = max(1, int(n_users * n_items * density))
    row_index = rng.integers(0, n_users, size=nnz)
    col_index = rng.integers(0, n_items, size=nnz)
    values = np.einsum("ij,ij->i", users[row_index], items[col_index])
    values += 0.05 * rng.normal(size=nnz)
    values = np.clip(values, 0.05, None)
    coords = np.stack([row_index, col_index], axis=1)
    return coords, values


def make_documents(n_docs: int, vocab_size: int, n_topics: int = 10,
                   doc_length: int = 50, seed: int = 0) -> list[np.ndarray]:
    """LDA-generated corpora (the topic-modeling workload).

    Each document is an int array of word ids drawn from a mixture of
    ``n_topics`` latent topics (PubMed/NYTimes-like bag-of-words).
    """
    if min(n_docs, vocab_size, n_topics, doc_length) < 1:
        raise WorkloadError("document dims must be positive")
    rng = _rng(seed)
    topic_word = rng.dirichlet(np.full(vocab_size, 0.1), size=n_topics)
    documents = []
    for _ in range(n_docs):
        theta = rng.dirichlet(np.full(n_topics, 0.3))
        topics = rng.choice(n_topics, size=doc_length, p=theta)
        words = np.array([rng.choice(vocab_size, p=topic_word[t])
                          for t in topics], dtype=np.int64)
        documents.append(words)
    return documents


def partition_rows(n_rows: int, n_partitions: int) -> list[np.ndarray]:
    """Even row split used to shard input data across workers."""
    if n_partitions < 1:
        raise WorkloadError(f"need >= 1 partition, got {n_partitions}")
    return [np.asarray(part, dtype=np.int64)
            for part in np.array_split(np.arange(n_rows), n_partitions)]
