"""Latent Dirichlet allocation by collapsed Gibbs sampling (the paper's
topic-modeling workload).

The shared model on the servers is the topic-word count matrix (plus
per-topic totals); each worker keeps its documents' topic assignments
and doc-topic counts locally.  A COMP subtask resamples every token of
the partition against the pulled global counts and pushes the count
*deltas* — the standard distributed collapsed Gibbs scheme (e.g.
Bösen/Petuum LDA).
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.errors import WorkloadError
from repro.ml.base import PSTrainable, TrainState


class LDAModel(PSTrainable):
    """Collapsed Gibbs LDA with symmetric Dirichlet priors."""

    name = "LDA"

    def __init__(self, vocab_size: int, n_topics: int = 10,
                 alpha: float = 0.1, beta: float = 0.01):
        if vocab_size < 1 or n_topics < 2:
            raise WorkloadError("LDA needs a vocabulary and >= 2 topics")
        self.vocab_size = vocab_size
        self.n_topics = n_topics
        self.alpha = alpha
        self.beta = beta

    def init_params(self, rng: np.random.Generator) -> \
            dict[str, np.ndarray]:
        return {
            "topic_word": np.zeros((self.n_topics, self.vocab_size)),
            "topic_total": np.zeros(self.n_topics),
        }

    def seed_partition(self, partition: dict,
                       rng: np.random.Generator) -> dict[str, np.ndarray]:
        """Assign random initial topics to a partition's tokens.

        Returns the count deltas the worker must push so the global
        model reflects the random initialization.
        """
        documents: list[np.ndarray] = partition["docs"]
        assignments = [rng.integers(0, self.n_topics, size=len(doc))
                       for doc in documents]
        doc_topic = np.zeros((len(documents), self.n_topics))
        topic_word = np.zeros((self.n_topics, self.vocab_size))
        topic_total = np.zeros(self.n_topics)
        for d, (doc, topics) in enumerate(zip(documents, assignments, strict=True)):
            for word, topic in zip(doc, topics, strict=True):
                doc_topic[d, topic] += 1
                topic_word[topic, word] += 1
                topic_total[topic] += 1
        partition["assignments"] = assignments
        partition["doc_topic"] = doc_topic
        return {"topic_word": topic_word, "topic_total": topic_total}

    def compute(self, params: Mapping[str, np.ndarray],
                partition: dict, state: TrainState) -> \
            tuple[dict[str, np.ndarray], float]:
        if "assignments" not in partition:
            raise WorkloadError(
                "partition not seeded; call seed_partition first")
        documents: list[np.ndarray] = partition["docs"]
        assignments: list[np.ndarray] = partition["assignments"]
        doc_topic: np.ndarray = partition["doc_topic"]
        rng: np.random.Generator = partition.setdefault(
            "rng", np.random.default_rng(state.iteration + 1))

        topic_word = params["topic_word"].copy()
        topic_total = params["topic_total"].copy()
        delta_word = np.zeros_like(topic_word)
        delta_total = np.zeros_like(topic_total)

        log_likelihood = 0.0
        n_tokens = 0
        vocab_beta = self.vocab_size * self.beta
        for d, doc in enumerate(documents):
            topics = assignments[d]
            for position, word in enumerate(doc):
                old = topics[position]
                # Remove the token's current assignment.
                doc_topic[d, old] -= 1
                topic_word[old, word] -= 1
                topic_total[old] -= 1
                delta_word[old, word] -= 1
                delta_total[old] -= 1
                # Collapsed Gibbs conditional.
                weights = ((doc_topic[d] + self.alpha)
                           * (topic_word[:, word] + self.beta)
                           / (topic_total + vocab_beta))
                weights = np.maximum(weights, 1e-12)
                probabilities = weights / weights.sum()
                new = int(rng.choice(self.n_topics, p=probabilities))
                # Install the new assignment.
                topics[position] = new
                doc_topic[d, new] += 1
                topic_word[new, word] += 1
                topic_total[new] += 1
                delta_word[new, word] += 1
                delta_total[new] += 1
                log_likelihood += float(np.log(
                    probabilities[new] + 1e-12))
                n_tokens += 1

        # Negative mean log-likelihood: "lower is better", like losses.
        objective = -log_likelihood / max(1, n_tokens)
        deltas = {"topic_word": delta_word, "topic_total": delta_total}
        return deltas, objective

    def objective_name(self) -> str:
        return "neg-log-likelihood"
