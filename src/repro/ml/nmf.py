"""Non-negative matrix factorization (the paper's NMF workload).

Netflix-style factorization ``R ~= W @ H.T``: the item factors ``H``
live on the parameter servers (the shared model), while each worker
keeps the user factors of its own rating partition locally — the
classic PS-NMF split, which makes PULL/PUSH move exactly the
model-sized data the cost model assumes.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.errors import WorkloadError
from repro.ml.base import PSTrainable, TrainState

_BLOCK = 128


class NMFModel(PSTrainable):
    """Gradient-descent NMF with non-negativity projection."""

    name = "NMF"

    def __init__(self, n_users: int, n_items: int, rank: int = 8,
                 l2: float = 1e-3):
        if min(n_users, n_items, rank) < 1:
            raise WorkloadError("NMF dims must be positive")
        self.n_users = n_users
        self.n_items = n_items
        self.rank = rank
        self.l2 = l2

    def block_keys(self) -> list[str]:
        return [f"h:{start}"
                for start in range(0, self.n_items, _BLOCK)]

    def _block_range(self, key: str) -> tuple[int, int]:
        start = int(key.split(":", 1)[1])
        return start, min(start + _BLOCK, self.n_items)

    def init_params(self, rng: np.random.Generator) -> \
            dict[str, np.ndarray]:
        params = {}
        for key in self.block_keys():
            lo, hi = self._block_range(key)
            params[key] = rng.uniform(0.1, 0.5, size=(hi - lo, self.rank))
        return params

    def _assemble(self, params: Mapping[str, np.ndarray]) -> np.ndarray:
        items = np.zeros((self.n_items, self.rank))
        for key in self.block_keys():
            lo, hi = self._block_range(key)
            items[lo:hi] = params[key]
        return items

    def compute(self, params: Mapping[str, np.ndarray],
                partition: dict, state: TrainState) -> \
            tuple[dict[str, np.ndarray], float]:
        """One alternating gradient pass on the partition's ratings.

        ``partition`` holds ``coords`` (nnz x 2 of (user, item)),
        ``values`` (nnz ratings), and mutable ``W`` (this partition's
        user factors, updated in place — worker-local state).
        """
        coords: np.ndarray = partition["coords"]
        values: np.ndarray = partition["values"]
        user_factors: np.ndarray = partition["W"]
        item_factors = self._assemble(params)

        users = coords[:, 0]
        items = coords[:, 1]
        predictions = np.einsum("ij,ij->i", user_factors[users],
                                item_factors[items])
        errors = predictions - values
        loss = float(errors @ errors) / len(values) \
            + self.l2 * (float(np.sum(user_factors ** 2))
                         + float(np.sum(item_factors ** 2)))

        lr = state.learning_rate / np.sqrt(1.0 + state.iteration)

        # Local W step (kept on the worker, never pushed).
        w_grad = np.zeros_like(user_factors)
        np.add.at(w_grad, users,
                  errors[:, None] * item_factors[items])
        w_grad = w_grad / len(values) + self.l2 * user_factors
        np.maximum(user_factors - lr * w_grad, 0.0, out=user_factors)

        # Shared H step (pushed as deltas).
        h_grad = np.zeros_like(item_factors)
        np.add.at(h_grad, items,
                  errors[:, None] * user_factors[users])
        h_grad = h_grad / len(values) + self.l2 * item_factors
        updated = np.maximum(item_factors - lr * h_grad, 0.0)
        step = updated - item_factors

        deltas = {}
        for key in self.block_keys():
            lo, hi = self._block_range(key)
            deltas[key] = step[lo:hi]
        return deltas, loss

    def objective_name(self) -> str:
        return "l2-loss"
