"""Objective tracking and convergence detection.

"We monitor the objective value (e.g., log-likelihood for LDA, and
L2-loss for NMF/MLR/Lasso) at the end of every epoch and determine the
convergence by comparing the objective value with the pre-defined
threshold" (§V-B).  A relative-improvement plateau test is provided as
well, since absolute thresholds are model-specific.
"""

from __future__ import annotations

from repro.errors import ConvergenceError


class ConvergenceTracker:
    """Tracks an objective that should decrease over epochs."""

    def __init__(self, threshold: float | None = None,
                 relative_tolerance: float = 1e-3, patience: int = 3,
                 max_epochs: int = 10_000):
        if patience < 1:
            raise ConvergenceError("patience must be >= 1")
        self.threshold = threshold
        self.relative_tolerance = relative_tolerance
        self.patience = patience
        self.max_epochs = max_epochs
        self.history: list[float] = []
        self._stalled = 0

    @property
    def epochs(self) -> int:
        return len(self.history)

    @property
    def best(self) -> float:
        if not self.history:
            raise ConvergenceError("no objective recorded yet")
        return min(self.history)

    def record(self, objective: float) -> bool:
        """Record one epoch's objective; True when converged.

        Divergence (NaN/inf) raises immediately — silent NaNs corrupt
        every later decision.
        """
        if objective != objective or objective in (float("inf"),
                                                   float("-inf")):
            raise ConvergenceError(
                f"objective diverged at epoch {self.epochs}: {objective}")
        previous_best = min(self.history) if self.history else None
        self.history.append(objective)
        if self.threshold is not None and objective <= self.threshold:
            return True
        if previous_best is not None:
            improvement = (previous_best - objective) \
                / max(abs(previous_best), 1e-12)
            if improvement < self.relative_tolerance:
                self._stalled += 1
            else:
                self._stalled = 0
            if self._stalled >= self.patience:
                return True
        return self.epochs >= self.max_epochs
