"""A timing-calibrated synthetic workload for runtime validation.

Real numpy models are too fast (and GIL-coupled) to demonstrate §IV-A's
timing claims on threads; :class:`SleepModel` makes COMP a *real* wall-
clock busy period of known length, so the local runtime's coordination
can be measured: two co-located jobs with COMP = x seconds each must
take ~2x per round when coordinated correctly (one COMP at a time) and
still make progress, while their COMM phases overlap.

Used by the runtime-validation tests and the local-runtime benchmarks —
not part of the paper's workload set.
"""

from __future__ import annotations

import time
from collections.abc import Mapping

import numpy as np

from repro.errors import WorkloadError
from repro.ml.base import PSTrainable, TrainState


class SleepModel(PSTrainable):
    """A PS-trainable whose COMP takes a configurable wall time.

    The "model" is a single counter; each compute sleeps for
    ``comp_seconds`` (optionally spinning to hold the CPU token
    honestly) and pushes a unit increment, so the objective decreases
    deterministically — convergence bookkeeping works as usual.
    """

    name = "SleepModel"

    def __init__(self, comp_seconds: float, payload_elements: int = 128,
                 spin: bool = False):
        if comp_seconds < 0:
            raise WorkloadError(
                f"comp_seconds must be >= 0, got {comp_seconds}")
        if payload_elements < 1:
            raise WorkloadError("payload needs at least one element")
        self.comp_seconds = comp_seconds
        self.payload_elements = payload_elements
        self.spin = spin

    def init_params(self, rng: np.random.Generator) -> \
            dict[str, np.ndarray]:
        return {"state": np.zeros(self.payload_elements)}

    def compute(self, params: Mapping[str, np.ndarray],
                partition: dict, state: TrainState) -> \
            tuple[dict[str, np.ndarray], float]:
        # harmony: allow[DET001] synthetic workload burns real CPU time by design
        deadline = time.perf_counter() + self.comp_seconds
        if self.spin:
            # harmony: allow[DET001] synthetic workload burns real CPU time by design
            while time.perf_counter() < deadline:
                pass  # burn CPU for real
        elif self.comp_seconds > 0:
            time.sleep(self.comp_seconds)
        progress = float(params["state"][0])
        delta = np.zeros(self.payload_elements)
        delta[0] = 1.0
        # Objective: distance to the partition's target epoch count.
        target = float(partition.get("target_epochs", 10))
        objective = max(0.0, target - progress)
        return {"state": delta}, objective

    def objective_name(self) -> str:
        return "remaining-epochs"
