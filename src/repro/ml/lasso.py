"""Lasso regression (the paper's regression workload).

Proximal gradient descent (ISTA) through the PS: the model is the
coefficient vector, sharded in blocks; each COMP computes the squared-
error gradient on its partition and pushes a delta that includes the
soft-thresholding step toward the L1-sparse solution.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.errors import WorkloadError
from repro.ml.base import PSTrainable, TrainState

_BLOCK = 64


def soft_threshold(values: np.ndarray, threshold: float) -> np.ndarray:
    """The L1 proximal operator."""
    return np.sign(values) * np.maximum(np.abs(values) - threshold, 0.0)


class LassoModel(PSTrainable):
    """Linear regression with L1 penalty, trained by ISTA steps."""

    name = "Lasso"

    def __init__(self, n_features: int, l1: float = 0.01):
        if n_features < 1:
            raise WorkloadError("Lasso needs >= 1 feature")
        self.n_features = n_features
        self.l1 = l1

    def block_keys(self) -> list[str]:
        return [f"beta:{start}"
                for start in range(0, self.n_features, _BLOCK)]

    def _block_range(self, key: str) -> tuple[int, int]:
        start = int(key.split(":", 1)[1])
        return start, min(start + _BLOCK, self.n_features)

    def init_params(self, rng: np.random.Generator) -> \
            dict[str, np.ndarray]:
        return {key: np.zeros(hi - lo)
                for key in self.block_keys()
                for lo, hi in [self._block_range(key)]}

    def _assemble(self, params: Mapping[str, np.ndarray]) -> np.ndarray:
        beta = np.zeros(self.n_features)
        for key in self.block_keys():
            lo, hi = self._block_range(key)
            beta[lo:hi] = params[key]
        return beta

    def compute(self, params: Mapping[str, np.ndarray],
                partition: dict, state: TrainState) -> \
            tuple[dict[str, np.ndarray], float]:
        features: np.ndarray = partition["X"]
        targets: np.ndarray = partition["y"]
        beta = self._assemble(params)

        n = len(targets)
        residual = features @ beta - targets
        loss = 0.5 * float(residual @ residual) / n \
            + self.l1 * float(np.sum(np.abs(beta)))
        grad = features.T @ residual / n

        lr = state.learning_rate / np.sqrt(1.0 + state.iteration)
        # ISTA: gradient step then shrinkage; the delta moves the server
        # value to the thresholded point.
        updated = soft_threshold(beta - lr * grad, lr * self.l1)
        step = updated - beta
        deltas = {}
        for key in self.block_keys():
            lo, hi = self._block_range(key)
            deltas[key] = step[lo:hi]
        return deltas, loss

    def objective_name(self) -> str:
        return "l2-loss+l1"

    def sparsity(self, params: Mapping[str, np.ndarray],
                 tolerance: float = 1e-6) -> float:
        """Fraction of (near-)zero coefficients."""
        beta = self._assemble(params)
        return float(np.mean(np.abs(beta) <= tolerance))
