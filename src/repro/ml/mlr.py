"""Multinomial logistic regression (the paper's MLR workload).

Softmax regression trained by mini-batch gradient descent through the
PS: the model is the ``(features x classes)`` weight matrix, sharded by
class blocks across servers; each COMP computes the softmax gradient on
the worker's partition and pushes ``-lr * grad`` as the delta.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.errors import WorkloadError
from repro.ml.base import PSTrainable, TrainState

#: Parameters are sharded in class-blocks of this width so multi-server
#: runs exercise real scatter/gather.
_BLOCK = 4


class MLRModel(PSTrainable):
    """Softmax regression with L2 regularization."""

    name = "MLR"

    def __init__(self, n_features: int, n_classes: int,
                 l2: float = 1e-4):
        if n_features < 1 or n_classes < 2:
            raise WorkloadError("MLR needs >= 1 feature and >= 2 classes")
        self.n_features = n_features
        self.n_classes = n_classes
        self.l2 = l2

    # -- parameter layout ----------------------------------------------------

    def block_keys(self) -> list[str]:
        return [f"w:{start}"
                for start in range(0, self.n_classes, _BLOCK)]

    def _block_range(self, key: str) -> tuple[int, int]:
        start = int(key.split(":", 1)[1])
        return start, min(start + _BLOCK, self.n_classes)

    def init_params(self, rng: np.random.Generator) -> \
            dict[str, np.ndarray]:
        params = {}
        for key in self.block_keys():
            lo, hi = self._block_range(key)
            params[key] = 0.01 * rng.normal(
                size=(self.n_features, hi - lo))
        return params

    def _assemble(self, params: Mapping[str, np.ndarray]) -> np.ndarray:
        weights = np.zeros((self.n_features, self.n_classes))
        for key in self.block_keys():
            lo, hi = self._block_range(key)
            weights[:, lo:hi] = params[key]
        return weights

    # -- training --------------------------------------------------------------

    def compute(self, params: Mapping[str, np.ndarray],
                partition: dict, state: TrainState) -> \
            tuple[dict[str, np.ndarray], float]:
        features: np.ndarray = partition["X"]
        labels: np.ndarray = partition["y"]
        weights = self._assemble(params)

        scores = features @ weights
        scores -= scores.max(axis=1, keepdims=True)
        exp_scores = np.exp(scores)
        probs = exp_scores / exp_scores.sum(axis=1, keepdims=True)
        n = len(labels)
        loss = -float(np.mean(
            np.log(probs[np.arange(n), labels] + 1e-12)))
        loss += 0.5 * self.l2 * float(np.sum(weights * weights))

        probs[np.arange(n), labels] -= 1.0
        grad = features.T @ probs / n + self.l2 * weights

        lr = state.learning_rate / np.sqrt(1.0 + state.iteration)
        deltas = {}
        for key in self.block_keys():
            lo, hi = self._block_range(key)
            deltas[key] = -lr * grad[:, lo:hi]
        return deltas, loss

    def objective_name(self) -> str:
        return "cross-entropy"

    def accuracy(self, params: Mapping[str, np.ndarray],
                 features: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy, for example scripts and tests."""
        weights = self._assemble(params)
        predictions = np.argmax(features @ weights, axis=1)
        return float(np.mean(predictions == labels))
