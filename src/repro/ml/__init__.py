"""Real implementations of the paper's four ML applications.

Multinomial logistic regression (MLR), Lasso regression, non-negative
matrix factorization (NMF), and latent Dirichlet allocation (LDA) — the
Table I workloads — implemented on numpy with the PS-friendly
gradient/delta interface of :class:`~repro.ml.base.PSTrainable`, plus
synthetic dataset generators standing in for the paper's datasets.
"""

from repro.ml.base import PSTrainable, TrainState
from repro.ml.convergence import ConvergenceTracker
from repro.ml.datasets import (
    make_classification,
    make_documents,
    make_ratings,
    make_regression,
)
from repro.ml.lasso import LassoModel
from repro.ml.lda import LDAModel
from repro.ml.mlr import MLRModel
from repro.ml.nmf import NMFModel

__all__ = [
    "ConvergenceTracker",
    "LDAModel",
    "LassoModel",
    "MLRModel",
    "NMFModel",
    "PSTrainable",
    "TrainState",
    "make_classification",
    "make_documents",
    "make_ratings",
    "make_regression",
]
