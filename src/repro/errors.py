"""Exception hierarchy for the Harmony reproduction.

Every error raised by this package derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class ProcessKilled(ReproError):
    """Raised inside a simulated process that has been killed externally."""


class ResourceError(SimulationError):
    """Invalid resource operation (double release, unknown handle, ...)."""


class ClusterError(ReproError):
    """Invalid cluster operation (allocating unavailable machines, ...)."""


class OutOfMemoryError(ReproError):
    """A machine's memory capacity was exceeded (the paper's OOM failure).

    Carries enough context to report which jobs were co-located when the
    failure happened, mirroring Fig. 4 of the paper.
    """

    def __init__(self, message: str, job_ids: tuple[str, ...] = (),
                 resident_gb: float = 0.0, capacity_gb: float = 0.0):
        super().__init__(message)
        self.job_ids = job_ids
        self.resident_gb = resident_gb
        self.capacity_gb = capacity_gb


class SchedulingError(ReproError):
    """The scheduler produced or received an invalid decision."""


class JobStateError(ReproError):
    """An operation was applied to a job in an incompatible state."""


class PSError(ReproError):
    """Parameter-server protocol violation (unknown key, shape mismatch...)."""


class ConvergenceError(ReproError):
    """A training run failed to make progress (diverged or NaN loss)."""


class WorkloadError(ReproError):
    """Invalid workload specification."""


class TraceError(ReproError):
    """Invalid tracing operation (closing a closed span, bad clock...)."""


class InvariantViolationError(ReproError):
    """A run-level invariant was violated (:mod:`repro.check`).

    Carries the individual violations so harnesses can report each one.
    """

    def __init__(self, message: str, violations: tuple = ()):
        super().__init__(message)
        self.violations = violations
