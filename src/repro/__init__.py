"""Harmony: a scheduling framework for multiple distributed ML jobs.

A from-scratch reproduction of the ICDCS 2021 paper.  The public API
re-exports the pieces a downstream user actually composes:

* workloads — :class:`~repro.workloads.apps.JobSpec`,
  :class:`~repro.workloads.generator.WorkloadGenerator`;
* the scheduler itself —
  :class:`~repro.core.scheduler.HarmonyScheduler`;
* end-to-end runtimes — :class:`~repro.core.runtime.HarmonyRuntime`
  (simulated cluster) and
  :class:`~repro.core.local_runtime.LocalHarmonyRuntime` (real
  threads, real models, real parameter servers);
* the baselines of the paper's evaluation.

See README.md for a tour and ``python -m repro --list`` for the
experiment drivers.
"""

from repro.baselines import IsolatedRuntime, NaiveRuntime, OracleScheduler
from repro.config import MachineSpec, SchedulerConfig, SimConfig
from repro.core import (
    HarmonyRuntime,
    HarmonyScheduler,
    JobMetrics,
    PerfModel,
    Profiler,
    RunResult,
)
from repro.core.local_runtime import LocalHarmonyRuntime, LocalJob
from repro.workloads import (
    CostModel,
    JobSpec,
    WorkloadGenerator,
    make_base_workload,
)

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "HarmonyRuntime",
    "HarmonyScheduler",
    "IsolatedRuntime",
    "JobMetrics",
    "JobSpec",
    "LocalHarmonyRuntime",
    "LocalJob",
    "MachineSpec",
    "NaiveRuntime",
    "OracleScheduler",
    "PerfModel",
    "Profiler",
    "RunResult",
    "SchedulerConfig",
    "SimConfig",
    "WorkloadGenerator",
    "make_base_workload",
    "__version__",
]
