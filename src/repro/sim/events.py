"""Triggerable events for the simulation kernel.

An :class:`Event` is a one-shot waitable: processes yield it to block
until someone calls :meth:`Event.succeed` or :meth:`Event.fail`.
:class:`AllOf` and :class:`AnyOf` compose events; ``AllOf`` is the
building block of the SubTask Synchronizer's cross-worker barriers.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterable
from typing import Any, TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator

Callback = Callable[["Event"], None]


class Event:
    """A one-shot event that processes can wait on.

    Events are *triggered* at most once, either successfully (with an
    optional value) or with an exception.  Callbacks registered before
    the trigger run synchronously, in registration order, at trigger
    time; callbacks registered after the trigger run immediately.
    """

    __slots__ = ("sim", "name", "order", "_callbacks", "_triggered",
                 "_ok", "_value")

    #: Process-wide monotonic creation counter.  ``order`` makes ties
    #: between same-timestamp events resolve by *insertion order*, never
    #: by ``id()`` — object identity varies run to run (and between the
    #: fast-path and reference engines), which made tie-heavy schedules
    #: flaky to compare.
    _creation_counter = itertools.count()

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        #: Monotonic creation index; the deterministic tiebreak for
        #: same-timestamp orderings (see ``__lt__``).
        self.order = next(Event._creation_counter)
        self._callbacks: list[Callback] = []
        self._triggered = False
        self._ok = False
        self._value: Any = None

    # -- inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """Whether the event was triggered successfully."""
        return self._triggered and self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} has no value yet")
        return self._value

    # -- triggering ---------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value``."""
        self._trigger(ok=True, value=value)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will have ``exc`` raised at their yield point.
        """
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._trigger(ok=False, value=exc)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self._triggered:
            raise SimulationError(
                f"event {self.name!r} triggered twice (at t={self.sim.now})")
        self._triggered = True
        self._ok = ok
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    # -- waiting ------------------------------------------------------

    def add_callback(self, callback: Callback) -> None:
        """Run ``callback(event)`` when the event triggers."""
        if self._triggered:
            callback(self)
        else:
            self._callbacks.append(callback)

    def __lt__(self, other: "Event") -> bool:
        """Creation-order comparison, so events (and tuples containing
        them, e.g. ``(when, event)`` heap entries) sort deterministically
        when timestamps tie."""
        if not isinstance(other, Event):
            return NotImplemented
        return self.order < other.order

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name!r} {state} @t={self.sim.now:.3f}>"


class AllOf(Event):
    """Triggers when every child event has triggered successfully.

    Fails as soon as any child fails.  The value is the list of child
    values in the order the children were given.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event],
                 name: str = "all_of"):
        super().__init__(sim, name)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._triggered:
            return
        if not child.ok:
            self.fail(child.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Triggers when the first child event triggers.

    The value is a ``(index, value)`` pair identifying which child fired.
    """

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event],
                 name: str = "any_of"):
        super().__init__(sim, name)
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one event")
        for index, child in enumerate(self._children):
            child.add_callback(self._make_child_callback(index))

    def _make_child_callback(self, index: int) -> Callback:
        def on_child(child: Event) -> None:
            if self._triggered:
                return
            if child.ok:
                self.succeed((index, child.value))
            else:
                self.fail(child.value)
        return on_child
