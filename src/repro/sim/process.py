"""Generator-based simulated processes.

A process is a Python generator that yields :class:`~repro.sim.events.Event`
objects.  Yielding an event suspends the process until the event
triggers; the event's value is sent back into the generator (or its
exception raised at the yield point).  A :class:`Process` is itself an
event that triggers when the generator returns, so processes can wait
on each other and be composed with ``AllOf``/``AnyOf``.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import TYPE_CHECKING

from repro.errors import ProcessKilled, SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator


class Process(Event):
    """A running simulated process.

    The process starts on construction: its first step executes via a
    zero-delay callback so that spawning is safe from within another
    process's step.
    """

    __slots__ = ("_generator", "_alive", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Generator,
                 name: str = "process"):
        super().__init__(sim, name)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process {name!r} requires a generator, got "
                f"{type(generator).__name__}")
        self._generator = generator
        self._alive = True
        self._waiting_on: Event | None = None
        sim.call_in(0.0, lambda: self._step(None, None))

    @property
    def alive(self) -> bool:
        """True while the generator has not finished or been killed."""
        return self._alive

    def kill(self, exc: BaseException | None = None) -> None:
        """Interrupt the process by raising ``exc`` at its yield point.

        By default a :class:`~repro.errors.ProcessKilled` is raised.  If
        the generator does not catch it, the process event *succeeds*
        with value ``None`` (a kill is a normal way to end a process, not
        a simulation failure).
        """
        if not self._alive:
            return
        exc = exc if exc is not None else ProcessKilled(self.name)
        self._waiting_on = None  # detach from whatever we were awaiting
        self._step(None, exc)

    # -- stepping ------------------------------------------------------

    def _on_wait_complete(self, event: Event) -> None:
        if not self._alive or event is not self._waiting_on:
            return  # stale callback (we were killed or redirected)
        self._waiting_on = None
        if event.ok:
            self._step(event.value, None)
        else:
            self._step(None, event.value)

    def _step(self, value, exc) -> None:
        while True:
            if not self._alive:
                return
            try:
                if exc is not None:
                    target = self._generator.throw(exc)
                else:
                    target = self._generator.send(value)
            except StopIteration as stop:
                self._finish(ok=True, value=stop.value)
                return
            except ProcessKilled:
                self._finish(ok=True, value=None)
                return
            except BaseException as error:  # noqa: BLE001 - via event
                self._finish(ok=False, value=error)
                return
            if not isinstance(target, Event):
                self._generator.close()
                self._finish(ok=False, value=SimulationError(
                    f"process {self.name!r} yielded "
                    f"{type(target).__name__}, expected an Event"))
                return
            if target.triggered:
                # Already-triggered target: resume in place instead of
                # recursing through add_callback -> _on_wait_complete
                # -> _step.  A long synchronous chain of ready events
                # (zero-work subtasks, or a fast-path batch serving a
                # whole job inline) would otherwise overflow the stack.
                if target.ok:
                    value, exc = target.value, None
                else:
                    value, exc = None, target.value
                continue
            self._waiting_on = target
            target.add_callback(self._on_wait_complete)
            return

    def _finish(self, ok: bool, value) -> None:
        self._alive = False
        if ok:
            self.succeed(value)
            return
        if not self._callbacks:
            # Nobody is waiting on this process: an error here would be
            # silently lost, leaving the simulation inconsistent.  Fail
            # fast instead of swallowing it.
            raise value
        self.fail(value)
