"""The simulation event loop.

:class:`Simulator` owns the virtual clock and a time-ordered callback
queue.  Everything else in the kernel (events, processes, resources) is
built from :meth:`Simulator.call_at` and :class:`~repro.sim.events.Event`.

Two execution regimes share this queue:

* the classic discrete-event regime: callbacks pop in ``(when, seq)``
  order — same-timestamp callbacks always fire in insertion order via
  the monotonic sequence tiebreak, never by object identity; and
* the fast-path regime (:mod:`repro.sim.fastpath`): a batch controller
  *warps* the clock through a window it owns and serves resource
  completions synchronously, cancelling the queue entries it absorbed
  so the loop never pops a stale wake-up behind the warped clock.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Generator
from dataclasses import dataclass
from typing import Any

from repro.errors import SimulationError
from repro.sim.events import Event
from repro.sim.process import Process
from repro.trace.tracer import NULL_TRACER


class ScheduledCall:
    """Cancellation handle for one queued callback.

    Cancelled entries are skipped by :meth:`Simulator.step` without
    touching the clock, so a wake-up that a fast-path batch absorbed
    in closed form can never drag the loop backwards in time.
    """

    __slots__ = ("when", "seq", "cancelled")

    def __init__(self, when: float, seq: int = -1):
        #: Absolute fire time the entry was queued at (after clamping).
        self.when = when
        #: Sequence number the entry was queued with — the same-time
        #: tiebreak position a coordinated fast-path drive must respect
        #: when it races this entry against a parked wake.
        self.seq = seq
        self.cancelled = False


@dataclass
class FastpathStats:
    """Engagement counters for the batched fast path.

    Every ``Simulator`` owns one (``sim.fastpath_stats``).  Tests use
    these to assert that a scenario actually took the batched lane —
    an equality test alone would pass even if the fast path silently
    never engaged.  All counters stay zero under
    ``engine="reference"``.
    """

    #: Fused solo-lane batches (one per single-job iteration window).
    solo_batches: int = 0
    #: Simulated seconds covered by solo-lane batches.
    solo_batched_seconds: float = 0.0
    #: Coordinated drive windows (one per driver-entry pop; a window
    #: serves every consecutive parked wake that precedes the next
    #: external event).
    drive_windows: int = 0
    #: Parked wakes served by coordinated drive windows.
    wakes_served: int = 0
    #: Group engines that attached in coordinated (parked) mode.
    groups_attached: int = 0
    #: Engines torn down by ``fastpath_enabled = False``.
    engines_deactivated: int = 0

    @property
    def engaged(self) -> bool:
        """Whether any batched lane (solo or coordinated) ever ran."""
        return self.solo_batches > 0 or self.wakes_served > 0


class Simulator:
    """A discrete-event simulator with a float-seconds clock."""

    def __init__(self, start_time: float = 0.0, tracer=None):
        self._now = float(start_time)
        self._queue: list[
            tuple[float, int, int, Callable[[], None],
                  ScheduledCall | None]] = []
        self._sequence = itertools.count()
        self._insertions = itertools.count()
        self._running = False
        self._fastpath_enabled = True
        #: Coordinated group engines currently parked on this simulator
        #: (:class:`repro.sim.fastpath.GroupBatchEngine`).  Clearing
        #: :attr:`fastpath_enabled` deactivates them all — parked wakes
        #: are re-queued as ordinary entries so the run can continue on
        #: the reference path.
        self._batch_engines: list[Any] = []
        #: Engagement counters for the batched fast path; all zero
        #: under ``engine="reference"``.
        self.fastpath_stats = FastpathStats()
        #: Horizon of the current :meth:`run` call (its ``until``
        #: argument), or ``None``.  Coordinated drives never serve a
        #: parked wake past this, so an ``until``-truncated run stops
        #: at exactly the same state as the reference engine.
        self.run_until: float | None = None
        #: The observability bus every kernel client reads its tracer
        #: from (:mod:`repro.trace`).  Defaults to the no-op tracer;
        #: runtimes install a live one when tracing is enabled.
        self.tracer = tracer if tracer is not None else NULL_TRACER

    @property
    def now(self) -> float:
        """Current simulation time, in seconds."""
        return self._now

    @property
    def fastpath_enabled(self) -> bool:
        """Master switch for the batched fast path.

        Runtimes clear it when the run is truncated by ``max_events``
        (callback counts differ between engines) or to force reference
        semantics.  Setting it to ``False`` deactivates every attached
        coordinated engine: parked wake times are re-queued as real
        events (preserving their tiebreak sequence numbers) and driver
        entries are cancelled, so the run continues bit-for-bit on the
        reference path.
        """
        return self._fastpath_enabled

    @fastpath_enabled.setter
    def fastpath_enabled(self, enabled: bool) -> None:
        enabled = bool(enabled)
        was = self._fastpath_enabled
        self._fastpath_enabled = enabled
        if was and not enabled:
            engines, self._batch_engines = self._batch_engines, []
            for engine in engines:
                engine.deactivate()

    def register_batch_engine(self, engine: Any) -> None:
        """Track a coordinated engine for fast-path teardown."""
        self._batch_engines.append(engine)

    # -- scheduling primitives ----------------------------------------

    def call_at(self, when: float, callback: Callable[[], None],
                cancellable: bool = False,
                sequence: int | None = None) -> ScheduledCall | None:
        """Run ``callback()`` at absolute time ``when``.

        With ``cancellable=True`` returns a :class:`ScheduledCall`
        accepted by :meth:`cancel`; the default returns ``None`` and
        pays nothing for the ability.  ``sequence`` re-queues an entry
        at a previously drawn tiebreak position instead of drawing a
        fresh one — the fast path uses it so a parked wake keeps the
        exact same-time ordering it would have had as a live entry.
        """
        if when < self._now - 1e-9:
            raise SimulationError(
                f"cannot schedule at {when} before now={self._now}")
        when = max(when, self._now)
        seq = next(self._sequence) if sequence is None else sequence
        handle = ScheduledCall(when, seq) if cancellable else None
        # The third field keeps heap entries totally ordered even when
        # two share (when, seq) — a re-queued parked wake can coexist
        # with the cancelled driver entry that carried its sequence
        # number — without ever comparing callbacks.
        heapq.heappush(self._queue,
                       (when, seq, next(self._insertions), callback,
                        handle))
        return handle

    def draw_sequence(self) -> int:
        """Draw the next tiebreak sequence number without queueing.

        Parked wakes call this at exactly the point the reference
        engine's ``call_at`` would, so an eventual re-queue (or a race
        against a live entry at the same timestamp) resolves in the
        reference order.
        """
        return next(self._sequence)

    def call_in(self, delay: float, callback: Callable[[], None],
                cancellable: bool = False) -> ScheduledCall | None:
        """Run ``callback()`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, callback,
                            cancellable=cancellable)

    def cancel(self, handle: ScheduledCall | None) -> None:
        """Retract a queued callback scheduled with ``cancellable=True``.

        Idempotent; accepts ``None`` (and already-fired handles) so
        callers can cancel unconditionally.  The dead entry is skipped
        — without moving the clock — when it reaches the top of the
        queue.
        """
        if handle is not None:
            handle.cancelled = True

    def warp(self, when: float) -> None:
        """Set the clock directly (fast-path batch replay only).

        The caller owns consistency: every queue entry it could pop
        inside the warped window must have been cancelled or absorbed,
        and the clock must be restored to the batch's opening time
        before control returns to the event loop.  ``step()``'s
        monotonicity guard still applies to whatever remains queued.
        """
        self._now = float(when)

    # -- event factories ----------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create an untriggered event bound to this simulator."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None,
                name: str = "timeout") -> Event:
        """An event that triggers ``delay`` seconds from now.

        Prefer :meth:`at` for periodic work: accumulating ``now +
        delay`` across many ticks drifts, while ``t0 + k * dt`` does
        not.
        """
        ev = Event(self, name)
        self.call_in(delay, lambda: ev.succeed(value))
        return ev

    def at(self, when: float, value: Any = None,
           name: str = "at") -> Event:
        """An event that triggers at the absolute time ``when``.

        The closed-form companion of :meth:`timeout`: the k-th tick of
        a periodic process lands bitwise on ``t0 + k * dt`` instead of
        accumulating float error step by step.
        """
        ev = Event(self, name)
        self.call_at(when, lambda: ev.succeed(value))
        return ev

    def spawn(self, generator: Generator, name: str = "process") -> Process:
        """Start a generator-based process immediately."""
        return Process(self, generator, name=name)

    # -- the loop ------------------------------------------------------

    def step(self) -> bool:
        """Execute the next scheduled callback.  Returns False if empty.

        Cancelled entries are discarded without advancing the clock.
        """
        while self._queue:
            when, _seq, _ins, callback, handle = heapq.heappop(self._queue)
            if handle is not None and handle.cancelled:
                continue
            if when < self._now - 1e-9:
                raise SimulationError("event queue went backwards in time")
            self._now = when
            callback()
            return True
        return False

    def run(self, until: float | None = None,
            max_events: int | None = None) -> float:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have executed.

        Returns the simulation time when the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        if max_events is not None and self._fastpath_enabled:
            # One coordinated drive window executes many reference
            # callbacks, so an event-count budget cannot be replicated
            # by the batched lane — tear it down before counting.
            self.fastpath_enabled = False
        self._running = True
        self.run_until = until
        try:
            executed = 0
            while True:
                when = self.peek()
                if when is None:
                    if until is not None and until > self._now:
                        self._now = until
                    break
                if max_events is not None and executed >= max_events:
                    break
                if until is not None and when > until:
                    self._now = until
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
            self.run_until = None
        return self._now

    def peek(self) -> float | None:
        """Time of the next live callback, or None if the queue is empty.

        Cancelled entries at the head are dropped on the way.
        """
        entry = self.peek_entry()
        return None if entry is None else entry[0]

    def peek_entry(self) -> tuple[float, int] | None:
        """``(when, seq)`` of the next live callback, or ``None``.

        Cancelled entries at the head are dropped on the way.  The
        coordinated fast path compares this key against its earliest
        parked wake to decide whether an external event must run
        before the next batched step.
        """
        queue = self._queue
        while queue:
            head = queue[0]
            handle = head[4]
            if handle is not None and handle.cancelled:
                heapq.heappop(queue)
                continue
            return (head[0], head[1])
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now:.3f} pending={len(self._queue)}>"
