"""The simulation event loop.

:class:`Simulator` owns the virtual clock and a time-ordered callback
queue.  Everything else in the kernel (events, processes, resources) is
built from :meth:`Simulator.call_at` and :class:`~repro.sim.events.Event`.

Two execution regimes share this queue:

* the classic discrete-event regime: callbacks pop in ``(when, seq)``
  order — same-timestamp callbacks always fire in insertion order via
  the monotonic sequence tiebreak, never by object identity; and
* the fast-path regime (:mod:`repro.sim.fastpath`): a batch controller
  *warps* the clock through a window it owns and serves resource
  completions synchronously, cancelling the queue entries it absorbed
  so the loop never pops a stale wake-up behind the warped clock.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Generator
from typing import Any

from repro.errors import SimulationError
from repro.sim.events import Event
from repro.sim.process import Process
from repro.trace.tracer import NULL_TRACER


class ScheduledCall:
    """Cancellation handle for one queued callback.

    Cancelled entries are skipped by :meth:`Simulator.step` without
    touching the clock, so a wake-up that a fast-path batch absorbed
    in closed form can never drag the loop backwards in time.
    """

    __slots__ = ("when", "cancelled")

    def __init__(self, when: float):
        #: Absolute fire time the entry was queued at (after clamping).
        self.when = when
        self.cancelled = False


class Simulator:
    """A discrete-event simulator with a float-seconds clock."""

    def __init__(self, start_time: float = 0.0, tracer=None):
        self._now = float(start_time)
        self._queue: list[
            tuple[float, int, Callable[[], None],
                  ScheduledCall | None]] = []
        self._sequence = itertools.count()
        self._running = False
        #: Master switch for the batched fast path
        #: (:mod:`repro.sim.fastpath`).  Runtimes clear it when the run
        #: is truncated (``until``/``max_events``), where batching past
        #: the horizon would diverge from the reference engine.
        self.fastpath_enabled = True
        #: The observability bus every kernel client reads its tracer
        #: from (:mod:`repro.trace`).  Defaults to the no-op tracer;
        #: runtimes install a live one when tracing is enabled.
        self.tracer = tracer if tracer is not None else NULL_TRACER

    @property
    def now(self) -> float:
        """Current simulation time, in seconds."""
        return self._now

    # -- scheduling primitives ----------------------------------------

    def call_at(self, when: float, callback: Callable[[], None],
                cancellable: bool = False) -> ScheduledCall | None:
        """Run ``callback()`` at absolute time ``when``.

        With ``cancellable=True`` returns a :class:`ScheduledCall`
        accepted by :meth:`cancel`; the default returns ``None`` and
        pays nothing for the ability.
        """
        if when < self._now - 1e-9:
            raise SimulationError(
                f"cannot schedule at {when} before now={self._now}")
        when = max(when, self._now)
        handle = ScheduledCall(when) if cancellable else None
        heapq.heappush(self._queue,
                       (when, next(self._sequence), callback, handle))
        return handle

    def call_in(self, delay: float, callback: Callable[[], None],
                cancellable: bool = False) -> ScheduledCall | None:
        """Run ``callback()`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, callback,
                            cancellable=cancellable)

    def cancel(self, handle: ScheduledCall | None) -> None:
        """Retract a queued callback scheduled with ``cancellable=True``.

        Idempotent; accepts ``None`` (and already-fired handles) so
        callers can cancel unconditionally.  The dead entry is skipped
        — without moving the clock — when it reaches the top of the
        queue.
        """
        if handle is not None:
            handle.cancelled = True

    def warp(self, when: float) -> None:
        """Set the clock directly (fast-path batch replay only).

        The caller owns consistency: every queue entry it could pop
        inside the warped window must have been cancelled or absorbed,
        and the clock must be restored to the batch's opening time
        before control returns to the event loop.  ``step()``'s
        monotonicity guard still applies to whatever remains queued.
        """
        self._now = float(when)

    # -- event factories ----------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create an untriggered event bound to this simulator."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None,
                name: str = "timeout") -> Event:
        """An event that triggers ``delay`` seconds from now.

        Prefer :meth:`at` for periodic work: accumulating ``now +
        delay`` across many ticks drifts, while ``t0 + k * dt`` does
        not.
        """
        ev = Event(self, name)
        self.call_in(delay, lambda: ev.succeed(value))
        return ev

    def at(self, when: float, value: Any = None,
           name: str = "at") -> Event:
        """An event that triggers at the absolute time ``when``.

        The closed-form companion of :meth:`timeout`: the k-th tick of
        a periodic process lands bitwise on ``t0 + k * dt`` instead of
        accumulating float error step by step.
        """
        ev = Event(self, name)
        self.call_at(when, lambda: ev.succeed(value))
        return ev

    def spawn(self, generator: Generator, name: str = "process") -> Process:
        """Start a generator-based process immediately."""
        return Process(self, generator, name=name)

    # -- the loop ------------------------------------------------------

    def step(self) -> bool:
        """Execute the next scheduled callback.  Returns False if empty.

        Cancelled entries are discarded without advancing the clock.
        """
        while self._queue:
            when, _seq, callback, handle = heapq.heappop(self._queue)
            if handle is not None and handle.cancelled:
                continue
            if when < self._now - 1e-9:
                raise SimulationError("event queue went backwards in time")
            self._now = when
            callback()
            return True
        return False

    def run(self, until: float | None = None,
            max_events: int | None = None) -> float:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have executed.

        Returns the simulation time when the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            executed = 0
            while True:
                when = self.peek()
                if when is None:
                    if until is not None and until > self._now:
                        self._now = until
                    break
                if max_events is not None and executed >= max_events:
                    break
                if until is not None and when > until:
                    self._now = until
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        return self._now

    def peek(self) -> float | None:
        """Time of the next live callback, or None if the queue is empty.

        Cancelled entries at the head are dropped on the way.
        """
        queue = self._queue
        while queue:
            handle = queue[0][3]
            if handle is not None and handle.cancelled:
                heapq.heappop(queue)
                continue
            return queue[0][0]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now:.3f} pending={len(self._queue)}>"
