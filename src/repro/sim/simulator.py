"""The simulation event loop.

:class:`Simulator` owns the virtual clock and a time-ordered callback
queue.  Everything else in the kernel (events, processes, resources) is
built from :meth:`Simulator.call_at` and :class:`~repro.sim.events.Event`.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Generator
from typing import Any

from repro.errors import SimulationError
from repro.sim.events import Event
from repro.sim.process import Process
from repro.trace.tracer import NULL_TRACER


class Simulator:
    """A discrete-event simulator with a float-seconds clock."""

    def __init__(self, start_time: float = 0.0, tracer=None):
        self._now = float(start_time)
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._running = False
        #: The observability bus every kernel client reads its tracer
        #: from (:mod:`repro.trace`).  Defaults to the no-op tracer;
        #: runtimes install a live one when tracing is enabled.
        self.tracer = tracer if tracer is not None else NULL_TRACER

    @property
    def now(self) -> float:
        """Current simulation time, in seconds."""
        return self._now

    # -- scheduling primitives ----------------------------------------

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback()`` at absolute time ``when``."""
        if when < self._now - 1e-9:
            raise SimulationError(
                f"cannot schedule at {when} before now={self._now}")
        heapq.heappush(self._queue, (max(when, self._now),
                                     next(self._sequence), callback))

    def call_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback()`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.call_at(self._now + delay, callback)

    # -- event factories ----------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create an untriggered event bound to this simulator."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None,
                name: str = "timeout") -> Event:
        """An event that triggers ``delay`` seconds from now."""
        ev = Event(self, name)
        self.call_in(delay, lambda: ev.succeed(value))
        return ev

    def spawn(self, generator: Generator, name: str = "process") -> Process:
        """Start a generator-based process immediately."""
        return Process(self, generator, name=name)

    # -- the loop ------------------------------------------------------

    def step(self) -> bool:
        """Execute the next scheduled callback.  Returns False if empty."""
        if not self._queue:
            return False
        when, _seq, callback = heapq.heappop(self._queue)
        if when < self._now - 1e-9:
            raise SimulationError("event queue went backwards in time")
        self._now = when
        callback()
        return True

    def run(self, until: float | None = None,
            max_events: int | None = None) -> float:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have executed.

        Returns the simulation time when the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            executed = 0
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                when = self._queue[0][0]
                if until is not None and when > until:
                    self._now = until
                    break
                self.step()
                executed += 1
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def peek(self) -> float | None:
        """Time of the next scheduled callback, or None if queue empty."""
        return self._queue[0][0] if self._queue else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now:.3f} pending={len(self._queue)}>"
