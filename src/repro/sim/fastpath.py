"""Batched fast path: closed-form multi-step skips between epochs.

The per-event reference engine advances a job group one subtask
completion at a time: every PULL/COMP/PUSH queues a wake-up on the
event heap, pops it back off, and trampolines through the process
machinery — six-plus heap operations per training step.  But every
one of those wake-ups is predetermined the moment the subtask is
submitted: the completion horizon is Eq. 1's closed form
``work_remaining / rate`` — and for a contended multi-job group, the
joint timeline is still piecewise closed-form between queue-length
changes (the per-segment fixed point).

:class:`GroupBatchEngine` exploits that in two lanes.  The **solo
lane** (single-job group, inert hooks): while a batch is open the
group's resources run in *autodrain* mode — :meth:`RateResource.drain`
jumps the clock straight to each closed-form completion instead of
round-tripping through the heap — and the group's **real** generator
code executes unchanged under the warped clock.  A batch covers a
whole job (every training iteration plus the initial load) and closes
with a *park*: the clock is restored to the batch's opening time,
in-flight background work is re-armed onto the real event queue, and
the job's terminal hooks wait on a queue entry at the batch's end
time — so the rest of the cluster observes the job finish exactly
when, and in the same order as, the reference engine would deliver
it.

The **coordinated drive lane** (multi-job groups, and any master
whose hooks are at least *replayable*, e.g. ``HarmonyMaster``): the
group's resources are permanently parked — each wake becomes a
``(when, seq)`` pair held on its resource instead of a heap entry —
and one cancellable *driver* entry stands in for the group's earliest
park.  When it fires, consecutive parked wakes are served at their
true times (forward-only warps, hooks observe true state) until an
external heap entry must interleave.  See
:class:`GroupBatchEngine` for the lane-by-lane contract.

Because the identical float operations run in the identical order,
both lanes are bitwise equal to the reference engine by construction;
the differential suite (``tests/test_sim_fastpath.py``) and the
``repro.check`` invariants pin it there.

Hot per-batch state is accumulated in struct-of-arrays form
(:class:`BatchStats`, :func:`ledger_view`) the way PR 5's
``MetricsView`` vectorized the scheduler: plain numpy arrays, cheap to
append to and comparable across engines with ``np.array_equal`` (exact
— no tolerance).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.group_runtime import GroupRuntime
    from repro.sim.events import Event
    from repro.sim.resources import RateResource


class BatchStats:
    """Struct-of-arrays record of the batches an engine ran.

    One row per closed batch: open time, close time, and the number of
    training iterations the batch covered.  Kept as parallel Python
    lists while hot (appends are O(1)) and materialized to numpy on
    read, mirroring how the scheduler's ``MetricsView`` exposes its
    column store.
    """

    __slots__ = ("_opened", "_closed", "_iterations")

    def __init__(self):
        self._opened: list[float] = []
        self._closed: list[float] = []
        self._iterations: list[int] = []

    def record(self, opened: float, closed: float,
               iterations: int) -> None:
        self._opened.append(opened)
        self._closed.append(closed)
        self._iterations.append(iterations)

    @property
    def n_batches(self) -> int:
        return len(self._opened)

    @property
    def opened(self) -> np.ndarray:
        return np.asarray(self._opened, dtype=np.float64)

    @property
    def closed(self) -> np.ndarray:
        return np.asarray(self._closed, dtype=np.float64)

    @property
    def iterations(self) -> np.ndarray:
        return np.asarray(self._iterations, dtype=np.int64)

    @property
    def batched_seconds(self) -> float:
        """Total simulated time covered by closed-form skips."""
        return float(np.sum(self.closed - self.opened))


def ledger_view(resource: "RateResource") -> np.ndarray:
    """The resource's conservation ledger as one float64 vector.

    Layout: ``[busy_seconds, work_submitted, work_served,
    work_discarded]``.  Snapshots from the two engines must satisfy
    ``np.array_equal`` — bitwise, not approximate — which is what the
    differential suite asserts.
    """
    return np.array([resource.busy_seconds, resource.work_submitted,
                     resource.work_served, resource.work_discarded],
                    dtype=np.float64)


def cycles_view(cycles) -> np.ndarray:
    """A group's :class:`CycleRecord` list as an (n, 6) float64 matrix.

    Columns: finished_at, duration, t_cpu_measured, t_net_measured,
    gc_overhead, stall.  Used for vectorized cross-engine comparison.
    """
    if not cycles:
        return np.empty((0, 6), dtype=np.float64)
    return np.array([[c.finished_at, c.duration, c.t_cpu_measured,
                      c.t_net_measured, c.gc_overhead, c.stall]
                     for c in cycles], dtype=np.float64)


class GroupBatchEngine:
    """Coordinates one group's batched execution.

    Created by :class:`~repro.core.group_runtime.GroupRuntime` when
    ``config.engine == "fast"`` and the master's hooks declare either
    ``iteration_hooks_inert`` (per-iteration callbacks never mutate the
    group or read clock-keyed cluster state, so a warped clock is
    safe) or ``iteration_hooks_replayable`` (callbacks may observe and
    mutate — pause jobs, hill-climb alpha, record utilization — but
    only through the simulator/group APIs, so they are correct as long
    as they run at true simulated times).

    Two lanes:

    * **Solo lane** (inert hooks, single-job group): the whole job runs
      under a warped clock inside one process step (``open`` /
      ``serve_solo`` / ``close``), parked at the closed-form end time.
    * **Coordinated drive lane** (any attached group, and the only
      lane for multi-job groups): the group's resources are permanently
      parked — every wake the reference engine would queue becomes a
      ``(when, seq)`` pair held on the resource — and the engine keeps
      exactly one real *driver* entry on the heap at the group's
      earliest parked wake, queued at that wake's own tiebreak
      sequence number.  When the driver fires, :meth:`_drive` serves
      consecutive parked wakes (warping the clock **forward only**, to
      each wake's true fire time) until the next external heap entry
      precedes the next parked wake.  Because completion callbacks run
      synchronously at true simulated times with true state, *any*
      hook — including ``HarmonyMaster``'s profiler transitions,
      pauses, and regroups — observes exactly what it would under the
      reference engine: the drive lane is bitwise equal by
      construction.  (This subsumes the record-at-warp/apply-at-park
      replay idea: nothing is ever observed at a warped time, so
      nothing needs replaying.)
    """

    __slots__ = ("group", "sim", "active", "solo_ok", "_t_open",
                 "_iterations_at_open", "stats", "_resources",
                 "_attached", "_driver_handle", "_driver_key",
                 "_in_drive")

    def __init__(self, group: "GroupRuntime", solo_ok: bool = True):
        self.group = group
        self.sim = group.sim
        self.active = False
        #: Whether the fused solo lane may be used (inert hooks only —
        #: replayable hooks must observe iterations at true times).
        self.solo_ok = solo_ok
        self._t_open = 0.0
        self._iterations_at_open = 0
        self.stats = BatchStats()
        self._resources = (group.cpu, group.net, group.disk)
        self._attached = False
        #: The single real heap entry backing the earliest parked wake.
        self._driver_handle = None
        #: ``(when, seq)`` the driver entry is queued at.
        self._driver_key: tuple[float, int] | None = None
        self._in_drive = False

    # -- coordinated drive lane ----------------------------------------

    def attach(self) -> bool:
        """Enter coordinated mode: park the group's resources under
        this engine and register for fast-path teardown.  Returns
        False (leaving everything untouched) when the master switch is
        already off."""
        sim = self.sim
        if not sim.fastpath_enabled:
            return False
        for resource in self._resources:
            resource.set_wake_owner(self)
        sim.register_batch_engine(self)
        sim.fastpath_stats.groups_attached += 1
        self._attached = True
        return True

    def deactivate(self) -> None:
        """Leave coordinated mode (fast-path teardown).

        Parked wakes are re-queued as real events at their exact
        ``(when, seq)`` keys and the driver entry is cancelled, so the
        run continues bit-for-bit on the reference path.
        """
        if not self._attached:
            return
        self._attached = False
        self.sim.cancel(self._driver_handle)
        self._driver_handle = None
        self._driver_key = None
        for resource in self._resources:
            resource.rearm()
        self.sim.fastpath_stats.engines_deactivated += 1

    def park_changed(self, resource: "RateResource") -> None:
        """Owner notification: a resource's parked wake was (re)set or
        cleared.  Reconciles the driver entry, except while a drive or
        solo batch is running (those reconcile once, on exit)."""
        if self._in_drive or self.active:
            return
        self._sync_driver()

    def _earliest_park(self) -> tuple[float, int] | None:
        best = None
        for resource in self._resources:
            when = resource._pending_wake_at
            if when is not None:
                key = (when, resource._pending_wake_seq)
                if best is None or key < best:
                    best = key
        return best

    def _sync_driver(self) -> None:
        """Keep exactly one live driver entry at the earliest parked
        wake, queued at that wake's own sequence number."""
        best = self._earliest_park()
        handle = self._driver_handle
        if (best == self._driver_key and handle is not None
                and not handle.cancelled):
            return
        self.sim.cancel(handle)
        self._driver_handle = None
        self._driver_key = None
        if best is None:
            return
        self._driver_handle = self.sim.call_at(
            best[0], self._drive, cancellable=True, sequence=best[1])
        self._driver_key = best

    def _drive(self) -> None:
        """Serve consecutive parked wakes at their true fire times.

        Stops when no park remains, when the next park would cross the
        current ``run()`` horizon, or when an external heap entry
        precedes the next park in ``(when, seq)`` order — external
        events (faults, arrivals, other groups' drivers, master
        timers) interleave exactly as they would on the reference
        heap.
        """
        self._driver_handle = None
        self._driver_key = None
        sim = self.sim
        queue = sim._queue
        resources = self._resources
        # run_until only changes inside Simulator.run(), and the
        # simulator is not reentrant — constant for the whole drive.
        until = sim.run_until
        # External-head cache: the heap only changes under a drive when
        # a completion callback pushes a new entry (or peek pops a
        # cancelled one), and both move ``len(queue)`` — steady-state
        # wakes never touch the heap, so the head survives many steps.
        head = None
        head_len = -1
        served = 0
        self._in_drive = True
        try:
            while True:
                best_when = None
                best_seq = 0
                best_resource = None
                for resource in resources:
                    when = resource._pending_wake_at
                    if when is None:
                        continue
                    seq = resource._pending_wake_seq
                    if (best_when is None or when < best_when
                            or (when == best_when and seq < best_seq)):
                        best_when = when
                        best_seq = seq
                        best_resource = resource
                if best_when is None:
                    break
                if until is not None and best_when > until:
                    break
                if len(queue) != head_len:
                    head = sim.peek_entry()
                    head_len = len(queue)
                if head is not None and (
                        head[0] < best_when
                        or (head[0] == best_when
                            and head[1] < best_seq)):
                    # A cancelled-in-place head (len unchanged) breaks
                    # conservatively: the loop round-trips once through
                    # step(), which discards it, and the driver refires.
                    break
                sim._now = best_when  # warp(), inlined for the hot loop
                best_resource.serve_parked()
                served += 1
        finally:
            self._in_drive = False
        if served:
            stats = sim.fastpath_stats
            stats.drive_windows += 1
            stats.wakes_served += served
        self._sync_driver()

    # -- solo-lane eligibility -----------------------------------------

    def open(self) -> bool:
        """Open a solo batch if the group is isolated enough to warp.

        Eligible when the master switch is on, the hooks are inert
        (``solo_ok``), exactly one job runs in the group (multi-job
        groups contend through shared policies — they take the
        coordinated drive lane instead), no foreign work is queued on
        the group's resources, and the current ``run()`` call has no
        ``until`` horizon (a solo batch would warp past it).
        """
        group = self.group
        sim = self.sim
        if self.active or not self._attached or not sim.fastpath_enabled:
            return False
        if not self.solo_ok or group.n_jobs != 1:
            return False
        if sim.run_until is not None:
            return False
        if (group.cpu.queue_length or group.net.queue_length
                or group.disk.queue_length):
            return False
        self._t_open = sim.now
        self._iterations_at_open = len(group.cycles)
        self.active = True
        return True

    # -- in-batch service ----------------------------------------------

    def await_background(self, resource: "RateResource") -> None:
        """Drain a background task (the §IV-C reload) at its await site.

        The task's completion may predate the warped clock — the reload
        ran concurrently with subtasks the batch already skipped past —
        so the drain may warp *backwards* to the completion time.  The
        caller compares ``sim.now`` against its pre-await time and
        restores the later of the two, exactly reproducing the
        reference engine's ``max(await_time, completion_time)`` resume.
        """
        before = self.sim.now
        resource.drain()
        if self.sim.now < before:
            self.sim.warp(before)

    # -- teardown ------------------------------------------------------

    def close(self) -> "Event":
        """End a solo batch; returns the *park* event to yield on.

        Restores the clock to the batch's opening time and parks the
        generator until the batch's end time comes around for real.
        In-flight background work stays parked on its resource (its
        sequence number was drawn inside the window, before the park
        event's — so an exact tie between a background completion and
        the job's end still resolves in the reference engine's order);
        the driver sync below makes its wake real.
        """
        group = self.group
        sim = self.sim
        t_end = sim.now
        sim.warp(self._t_open)
        self.active = False
        self.stats.record(self._t_open, t_end,
                          len(group.cycles) - self._iterations_at_open)
        fp = sim.fastpath_stats
        fp.solo_batches += 1
        fp.solo_batched_seconds += t_end - self._t_open
        self._sync_driver()
        return sim.at(t_end, name=f"{group.group_id}:batch-park")
