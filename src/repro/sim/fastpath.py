"""Batched fast path: closed-form multi-step skips between epochs.

The per-event reference engine advances a job group one subtask
completion at a time: every PULL/COMP/PUSH queues a wake-up on the
event heap, pops it back off, and trampolines through the process
machinery — six-plus heap operations per training step.  But for a
group whose step timeline cannot interact with the rest of the cluster
(one job, dedicated machines, masters whose per-iteration hooks are
inert), every one of those wake-ups is predetermined the moment the
subtask is submitted: the completion horizon is Eq. 1's closed form
``work_remaining / rate``.

:class:`GroupBatchEngine` exploits that.  While a batch is open, the
group's resources run in *autodrain* mode — :meth:`RateResource.drain`
jumps the clock straight to each closed-form completion instead of
round-tripping through the heap — and the group's **real** generator
code executes unchanged under the warped clock.  Because the identical
float operations run in the identical order, the fast path is bitwise
equal to the reference engine by construction; the differential suite
(``tests/test_sim_fastpath.py``) and the ``repro.check`` invariants pin
it there.

A batch covers a whole job (every training iteration plus the initial
load) and closes with a *park*: the clock is restored to the batch's
opening time, in-flight background work is re-armed onto the real
event queue, and the job's terminal hooks wait on a queue entry at the
batch's end time — so the rest of the cluster observes the job finish
exactly when, and in the same order as, the reference engine would
deliver it.

Hot per-batch state is accumulated in struct-of-arrays form
(:class:`BatchStats`, :func:`ledger_view`) the way PR 5's
``MetricsView`` vectorized the scheduler: plain numpy arrays, cheap to
append to and comparable across engines with ``np.array_equal`` (exact
— no tolerance).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.group_runtime import GroupRuntime
    from repro.sim.events import Event
    from repro.sim.resources import RateResource


class BatchStats:
    """Struct-of-arrays record of the batches an engine ran.

    One row per closed batch: open time, close time, and the number of
    training iterations the batch covered.  Kept as parallel Python
    lists while hot (appends are O(1)) and materialized to numpy on
    read, mirroring how the scheduler's ``MetricsView`` exposes its
    column store.
    """

    __slots__ = ("_opened", "_closed", "_iterations")

    def __init__(self):
        self._opened: list[float] = []
        self._closed: list[float] = []
        self._iterations: list[int] = []

    def record(self, opened: float, closed: float,
               iterations: int) -> None:
        self._opened.append(opened)
        self._closed.append(closed)
        self._iterations.append(iterations)

    @property
    def n_batches(self) -> int:
        return len(self._opened)

    @property
    def opened(self) -> np.ndarray:
        return np.asarray(self._opened, dtype=np.float64)

    @property
    def closed(self) -> np.ndarray:
        return np.asarray(self._closed, dtype=np.float64)

    @property
    def iterations(self) -> np.ndarray:
        return np.asarray(self._iterations, dtype=np.int64)

    @property
    def batched_seconds(self) -> float:
        """Total simulated time covered by closed-form skips."""
        return float(np.sum(self.closed - self.opened))


def ledger_view(resource: "RateResource") -> np.ndarray:
    """The resource's conservation ledger as one float64 vector.

    Layout: ``[busy_seconds, work_submitted, work_served,
    work_discarded]``.  Snapshots from the two engines must satisfy
    ``np.array_equal`` — bitwise, not approximate — which is what the
    differential suite asserts.
    """
    return np.array([resource.busy_seconds, resource.work_submitted,
                     resource.work_served, resource.work_discarded],
                    dtype=np.float64)


def cycles_view(cycles) -> np.ndarray:
    """A group's :class:`CycleRecord` list as an (n, 6) float64 matrix.

    Columns: finished_at, duration, t_cpu_measured, t_net_measured,
    gc_overhead, stall.  Used for vectorized cross-engine comparison.
    """
    if not cycles:
        return np.empty((0, 6), dtype=np.float64)
    return np.array([[c.finished_at, c.duration, c.t_cpu_measured,
                      c.t_net_measured, c.gc_overhead, c.stall]
                     for c in cycles], dtype=np.float64)


class GroupBatchEngine:
    """Coordinates one group's closed-form batches.

    Created by :class:`~repro.core.group_runtime.GroupRuntime` only
    when ``config.engine == "fast"`` **and** the master's hooks declare
    ``iteration_hooks_inert`` — the contract that per-iteration
    callbacks never mutate the group, pause jobs, or read cluster state
    keyed to the wall clock, so running them under a warped clock is
    indistinguishable from running them live.
    """

    __slots__ = ("group", "active", "_t_open", "_iterations_at_open",
                 "stats")

    def __init__(self, group: "GroupRuntime"):
        self.group = group
        self.active = False
        self._t_open = 0.0
        self._iterations_at_open = 0
        self.stats = BatchStats()

    # -- eligibility ---------------------------------------------------

    def open(self) -> bool:
        """Open a batch if the group is isolated enough to skip ahead.

        Eligible when the master switch is on, exactly one job runs in
        the group (multi-job groups contend through shared policies, so
        their timelines interleave), and no foreign work is queued on
        the group's resources.
        """
        group = self.group
        if self.active or not group.sim.fastpath_enabled:
            return False
        if group.n_jobs != 1:
            return False
        if (group.cpu.queue_length or group.net.queue_length
                or group.disk.queue_length):
            return False
        self._t_open = group.sim.now
        self._iterations_at_open = len(group.cycles)
        for resource in (group.cpu, group.net, group.disk):
            resource.set_autodrain(True)
        self.active = True
        return True

    # -- in-batch service ----------------------------------------------

    def await_background(self, resource: "RateResource") -> None:
        """Drain a background task (the §IV-C reload) at its await site.

        The task's completion may predate the warped clock — the reload
        ran concurrently with subtasks the batch already skipped past —
        so the drain may warp *backwards* to the completion time.  The
        caller compares ``sim.now`` against its pre-await time and
        restores the later of the two, exactly reproducing the
        reference engine's ``max(await_time, completion_time)`` resume.
        """
        before = self.group.sim.now
        resource.drain()
        if self.group.sim.now < before:
            self.group.sim.warp(before)

    # -- teardown ------------------------------------------------------

    def close(self) -> "Event":
        """End the batch; returns the *park* event to yield on.

        Restores the clock to the batch's opening time, re-arms
        in-flight background work onto the real event queue (before the
        park, so an exact tie between a background completion and the
        job's end resolves in the reference engine's order), and parks
        the generator until the batch's end time comes around for real.
        """
        group = self.group
        sim = group.sim
        t_end = sim.now
        sim.warp(self._t_open)
        for resource in (group.cpu, group.net, group.disk):
            resource.rearm()
        self.active = False
        self.stats.record(self._t_open, t_end,
                          len(group.cycles) - self._iterations_at_open)
        return sim.at(t_end, name=f"{group.group_id}:batch-park")
