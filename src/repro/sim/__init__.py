"""Discrete-event simulation kernel.

A minimal, dependency-free DES in the style of SimPy: generator-based
processes, triggerable events, and rate-based shared resources.  The
Harmony runtime (:mod:`repro.core.runtime`) and the baseline runtimes
are built on top of this kernel.
"""

from repro.sim.events import AllOf, AnyOf, Event
from repro.sim.process import Process
from repro.sim.rand import RandomStreams
from repro.sim.resources import (
    RatePolicy,
    RateResource,
    primary_secondary,
    processor_sharing,
    serial,
)
from repro.sim.simulator import FastpathStats, ScheduledCall, Simulator

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "FastpathStats",
    "Process",
    "RandomStreams",
    "RatePolicy",
    "RateResource",
    "ScheduledCall",
    "Simulator",
    "primary_secondary",
    "processor_sharing",
    "serial",
]
