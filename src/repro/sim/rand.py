"""Named, reproducible random streams.

Every stochastic component of the simulation (duration jitter, arrival
processes, workload generation, ...) draws from its own named stream so
that adding randomness to one component never perturbs another — a
standard trick for reproducible distributed-systems simulation.
"""

from __future__ import annotations

import zlib

import numpy as np


class RandomStreams:
    """A family of independent RNG streams derived from one seed."""

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}
        # (mu, sigma) of the unit-mean lognormal per cv; the transform
        # is deterministic, so memoizing it is exact.
        self._lognormal_params: dict[float, tuple[float, float]] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created deterministically on first
        use from ``(seed, crc32(name))``."""
        generator = self._streams.get(name)
        if generator is None:
            child_seed = np.random.SeedSequence(
                [self.seed, zlib.crc32(name.encode())])
            generator = np.random.default_rng(child_seed)
            self._streams[name] = generator
        return generator

    def jitter(self, name: str, cv: float) -> float:
        """A multiplicative jitter factor with mean 1 and coefficient of
        variation ``cv``, drawn from a lognormal distribution.

        ``cv = 0`` returns exactly 1.0 (useful to disable noise).
        """
        if cv <= 0.0:
            return 1.0
        params = self._lognormal_params.get(cv)
        if params is None:
            sigma = np.sqrt(np.log(1.0 + cv * cv))
            mu = -0.5 * sigma * sigma  # mean of lognormal == 1
            params = (mu, sigma)
            self._lognormal_params[cv] = params
        return float(self.stream(name).lognormal(params[0], params[1]))

    def spawn(self, label: str) -> "RandomStreams":
        """A child family, independent of this one, for sub-components."""
        return RandomStreams(zlib.crc32(f"{self.seed}:{label}".encode()))
