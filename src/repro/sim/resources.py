"""Rate-based shared resources.

All resource contention in the simulated cluster is expressed through
:class:`RateResource`: tasks carry an amount of *work* (seconds of
service at rate 1.0) and a :data:`RatePolicy` decides, from a task's
position in the FIFO queue, at what rate it is currently served.

Three policies cover every resource in the paper:

* :func:`serial` — one task at a time.  Models the CPU of a machine /
  job group: "a single CPU subtask is executed at a time as a single
  CPU subtask usually uses almost all of the provided CPU resources"
  (§IV-A).
* :func:`primary_secondary` — full rate for the head-of-line task plus a
  reduced-rate secondary.  Models the network: "we schedule a secondary
  network subtask, while yielding the network resources to the primary
  network subtask whenever a contention occurs" (§IV-A).
* :func:`processor_sharing` — equal sharing among all active tasks, with
  an optional interference penalty.  Models the *naive co-location*
  baseline (uncoordinated contention) and shared disk bandwidth.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.errors import ResourceError
from repro.sim.events import Event
from repro.sim.simulator import Simulator

_EPSILON = 1e-9

#: Maps the number of queued tasks to per-position service rates.
#: Positions beyond the returned sequence receive rate 0 (waiting).
RatePolicy = Callable[[int], Sequence[float]]


def serial() -> RatePolicy:
    """Only the head-of-line task runs, at full rate."""
    def policy(n_active: int) -> Sequence[float]:
        return (1.0,)
    return policy


def primary_secondary(secondary_rate: float = 0.4) -> RatePolicy:
    """Head-of-line task at full rate; the next task at a reduced rate.

    ``secondary_rate`` is the fraction of the resource the secondary
    task scavenges from the primary's idle gaps.
    """
    if not 0.0 <= secondary_rate <= 1.0:
        raise ResourceError(f"secondary_rate {secondary_rate} not in [0,1]")

    def policy(n_active: int) -> Sequence[float]:
        return (1.0, secondary_rate)
    return policy


def processor_sharing(interference: float = 0.0,
                      max_concurrent: int | None = None) -> RatePolicy:
    """All (or the first ``max_concurrent``) tasks share the resource.

    With ``k`` concurrent tasks each receives ``eff(k) / k`` where
    ``eff(k) = 1 / (1 + interference * (k - 1))`` — i.e. total delivered
    throughput *degrades* with concurrency.  ``interference=0`` is ideal
    processor sharing.
    """
    if interference < 0:
        raise ResourceError(f"interference {interference} must be >= 0")

    def policy(n_active: int) -> Sequence[float]:
        k = n_active if max_concurrent is None else min(n_active,
                                                        max_concurrent)
        if k <= 0:
            return ()
        efficiency = 1.0 / (1.0 + interference * (k - 1))
        return (efficiency / k,) * k
    return policy


@dataclass(slots=True)
class ServiceRecord:
    """Completion record delivered as the value of a task's event."""

    submitted_at: float
    started_at: float
    finished_at: float
    work: float

    @property
    def wait_time(self) -> float:
        """Time spent queued before receiving any service."""
        return self.started_at - self.submitted_at

    @property
    def total_time(self) -> float:
        return self.finished_at - self.submitted_at


@dataclass(slots=True)
class _Task:
    work_remaining: float
    work_total: float
    event: Event
    tag: str | None
    submitted_at: float
    started_at: float | None = None
    served: float = 0.0


@dataclass
class BusySegment:
    """A constant-utilization interval of the resource."""

    start: float
    end: float
    level: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class ResourceAudit:
    """Work-conservation snapshot of one resource (repro.check).

    Taken by :meth:`RateResource.audit`; the invariant checker asserts
    ``work_served == work_submitted - work_discarded - queued_work``
    (no service is ever lost or invented) and bounds ``busy_seconds``
    by the served work.
    """

    name: str
    at: float
    busy_seconds: float
    work_submitted: float
    work_served: float
    work_discarded: float
    queued_work: float
    queue_length: int


class RateResource:
    """A shared resource serving FIFO-ordered tasks at policy rates."""

    def __init__(self, sim: Simulator, policy: RatePolicy, name: str = "",
                 record_segments: bool = True,
                 trace_gauge: str | None = None):
        self.sim = sim
        self.name = name
        # Event name shared by every task of this resource; building it
        # once keeps the per-submit cost to an attribute load.
        self._task_name = f"{name}:task"
        self._policy = policy
        self._tasks: list[_Task] = []
        self._last_update = sim.now
        self._wake_generation = 0
        #: Handle of the queued wake-up (event-driven mode), so a
        #: superseded or purged wake is retracted instead of left to
        #: rot in the event queue.
        self._wake_handle = None
        #: Fast-path mode (:mod:`repro.sim.fastpath`): wake-ups are not
        #: queued; their exact fire time is parked here for
        #: :meth:`drain` to warp to.
        self._autodrain = False
        self._pending_wake_at: float | None = None
        #: Tiebreak sequence number of the parked wake (coordinated
        #: mode only), drawn at exactly the point the reference
        #: engine's ``call_at`` would have drawn it.
        self._pending_wake_seq: int | None = None
        #: Coordinated fast-path owner (a ``GroupBatchEngine``).  When
        #: set, parked wakes draw sequence numbers and the owner is
        #: notified on every park change so it can keep one real
        #: "driver" event at the group's earliest parked wake.
        self._wake_owner = None
        # Head-of-line service rate for a queue of one, memoized for
        # serve_solo (policies are pure functions of the queue length).
        self._solo_rate: float | None = None
        # Per-queue-length (rates, level, active indices) memo for
        # serve_parked.  Policies are pure functions of the queue
        # length, so the cached tuples are float-identical to what
        # current_rates() would rebuild at every wake.
        self._rates_cache: dict[
            int, tuple[tuple[float, ...], float, tuple[int, ...]]] = {}
        self._record_segments = record_segments
        # Observability: a gauge lane sampling the delivered service
        # level at every rate change (renders as a Perfetto counter
        # track).  None unless tracing is enabled, so the simulation
        # hot path pays a single attribute check.
        self._level_gauge = (sim.tracer.gauge(trace_gauge)
                            if trace_gauge and sim.tracer.enabled
                            else None)
        self._last_level = 0.0
        #: Utilization history: one entry per constant-rate interval.
        self.segments: list[BusySegment] = []
        # Segments below this index are sealed: close_segments() has
        # published them (exporters/recorders take shallow copies), so
        # _append_segment must never extend them in place.
        self._segment_seal = 0
        #: Aggregate ``∫ level dt`` — busy seconds, capped at capacity.
        self.busy_seconds = 0.0
        #: Service seconds attributed per tag (e.g. per job id).
        self.served_by_tag: dict[str, float] = {}
        #: Work-conservation ledger (see :class:`ResourceAudit`).
        self.work_submitted = 0.0
        self.work_served = 0.0
        self.work_discarded = 0.0

    # -- public API ----------------------------------------------------

    @property
    def queue_length(self) -> int:
        return len(self._tasks)

    def submit(self, work: float, tag: str | None = None) -> Event:
        """Enqueue ``work`` seconds of service; returns a completion event.

        The event value is a :class:`ServiceRecord`.
        """
        if work < 0:
            raise ResourceError(f"negative work {work} on {self.name!r}")
        sim = self.sim
        # _advance at an unchanged clock only rewrites _last_update with
        # the same value; skipping the call entirely is exact.
        if sim._now != self._last_update:
            self._advance()
        event = Event(sim, self._task_name)
        task = _Task(work_remaining=max(work, 0.0), work_total=work,
                     event=event, tag=tag, submitted_at=sim._now)
        self.work_submitted += task.work_remaining
        self._tasks.append(task)
        # Zero-work tasks are popped as already-finished by the
        # rescheduling pass below.
        self._reschedule()
        return event

    def cancel(self, event: Event) -> bool:
        """Remove a pending task identified by its completion event.

        Returns True if the task was found and removed.  The event is
        *not* triggered; the caller owns it.
        """
        self._advance()
        for index, task in enumerate(self._tasks):
            if task.event is event:
                self.work_discarded += max(task.work_remaining, 0.0)
                del self._tasks[index]
                self._reschedule()
                return True
        return False

    def purge(self) -> float:
        """Drop every queued task without completing it.

        Used when a group crashes: its processes are killed, so their
        pending resource tasks must not keep receiving service.  The
        abandoned work is booked as discarded; the tasks' events are not
        triggered.  Returns the total work dropped.
        """
        self._advance()
        dropped = sum(max(t.work_remaining, 0.0) for t in self._tasks)
        self._tasks.clear()
        self.work_discarded += dropped
        # Invalidate any scheduled wake-up for the old queue.  The
        # generation bump alone would neutralize a stale wake, but the
        # dead queue entry would still be popped later — retract it so
        # a fault firing exactly on a step boundary leaves no trace.
        self._wake_generation += 1
        self.sim.cancel(self._wake_handle)
        self._wake_handle = None
        self._pending_wake_at = None
        self._pending_wake_seq = None
        if self._level_gauge is not None:
            self._sample_level()
        if self._wake_owner is not None:
            self._wake_owner.park_changed(self)
        return dropped

    def audit(self) -> ResourceAudit:
        """Snapshot the work-conservation ledger as of ``sim.now``."""
        self._advance()
        return ResourceAudit(
            name=self.name,
            at=self.sim.now,
            busy_seconds=self.busy_seconds,
            work_submitted=self.work_submitted,
            work_served=self.work_served,
            work_discarded=self.work_discarded,
            queued_work=sum(max(t.work_remaining, 0.0)
                            for t in self._tasks),
            queue_length=len(self._tasks))

    def current_rates(self) -> list[float]:
        """Service rates per queued task, in queue order (0 = waiting)."""
        rates = list(self._policy(len(self._tasks)))
        result = []
        for index in range(len(self._tasks)):
            result.append(rates[index] if index < len(rates) else 0.0)
        return result

    def close_segments(self) -> None:
        """Flush the in-progress utilization segment up to ``sim.now``.

        Idempotent, and safe to call from multiple consumers (checker +
        exporter): the flushed segments are *sealed*, so later service
        starts a fresh :class:`BusySegment` instead of mutating a
        segment a caller may have already copied by reference.
        """
        self._advance()
        self._segment_seal = len(self.segments)

    # -- internals -----------------------------------------------------

    def _advance(self) -> None:
        """Account for service delivered since the last update."""
        now = self.sim._now
        dt = now - self._last_update
        if dt <= _EPSILON:
            self._last_update = now
            return
        if self._wake_owner is not None and self._level_gauge is None:
            # Coordinated mode: replay the same arithmetic from the
            # per-queue-length memo (identical values in identical
            # order — see _rates_for) without rebuilding rate lists.
            tasks = self._tasks
            cached = self._rates_cache.get(len(tasks))
            if cached is None:
                cached = self._rates_for(len(tasks))
            rates, level, active = cached
            last_update = self._last_update
            if level > _EPSILON:
                self.busy_seconds += level * dt
                if self._record_segments:
                    self._append_segment(last_update, now, level)
            served_by_tag = self.served_by_tag
            for index in active:
                task = tasks[index]
                if task.started_at is None:
                    task.started_at = last_update
                delivered = min(task.work_remaining, rates[index] * dt)
                task.work_remaining -= delivered
                task.served += delivered
                self.work_served += delivered
                tag = task.tag
                if tag is not None:
                    served_by_tag[tag] = (
                        served_by_tag.get(tag, 0.0) + delivered)
            self._last_update = now
            return
        rates = self.current_rates()
        level = min(1.0, sum(rates))
        if level > _EPSILON:
            self.busy_seconds += level * dt
            if self._record_segments:
                self._append_segment(self._last_update, now, level)
        for task, rate in zip(self._tasks, rates, strict=True):
            if rate <= _EPSILON:
                continue
            if task.started_at is None:
                task.started_at = self._last_update
            delivered = min(task.work_remaining, rate * dt)
            task.work_remaining -= delivered
            task.served += delivered
            self.work_served += delivered
            if task.tag is not None:
                self.served_by_tag[task.tag] = (
                    self.served_by_tag.get(task.tag, 0.0) + delivered)
        self._last_update = now

    def _append_segment(self, start: float, end: float, level: float) -> None:
        if end - start <= 0.0:
            # A zero-duration segment (a fault or seal landing exactly
            # on a step boundary) carries no service; recording it
            # would double-count the boundary instant in the
            # conservation ledger once a later segment merges onto it.
            return
        if len(self.segments) > self._segment_seal:
            last = self.segments[-1]
            if (abs(last.end - start) <= _EPSILON
                    and abs(last.level - level) <= 1e-6):
                last.end = end
                return
        self.segments.append(BusySegment(start, end, level))

    def _reschedule(self) -> None:
        """Recompute the next completion and schedule a wake-up."""
        # Supersede the previously queued wake instead of leaving a
        # dead entry behind: the generation guard would ignore it, but
        # stale entries cost queue traffic and would block fast-path
        # clock warps across their fire times.
        if self._wake_handle is not None:
            self._wake_handle.cancelled = True  # sim.cancel()
            self._wake_handle = None
        self._pending_wake_at = None
        self._pending_wake_seq = None
        self._wake_generation += 1
        generation = self._wake_generation
        # Pop any tasks that are already done (zero-work or finished
        # exactly at the current instant).
        self._pop_finished()
        if self._level_gauge is not None:
            self._sample_level()
        owner = self._wake_owner
        if not self._tasks:
            if owner is not None and not (owner._in_drive
                                          or owner.active):
                owner._sync_driver()  # park_changed(), inlined
            return
        if owner is not None and self._level_gauge is None:
            # Coordinated mode: the horizon scan over the memoized
            # active set replays _next_horizon's arithmetic exactly.
            tasks = self._tasks
            cached = self._rates_cache.get(len(tasks))
            if cached is None:
                cached = self._rates_for(len(tasks))
            rates, _level, active = cached
            horizon = None
            for index in active:
                eta = tasks[index].work_remaining / rates[index]
                if horizon is None or eta < horizon:
                    horizon = eta
        else:
            horizon = self._next_horizon()
        if horizon is None:
            # everything is waiting (policy starves the queue)
            if owner is not None:
                owner.park_changed(self)
            return
        when = self.sim._now + max(horizon, 0.0)
        if self._autodrain:
            if owner is not None:
                # Coordinated lane: mirror the event-driven entry
                # exactly.  _pop_finished may have resumed a process
                # whose submit() ran a nested _reschedule — that nested
                # park is the live one (the entry this frame would have
                # queued is generation-dead on arrival in the reference
                # engine), so a stale frame must not overwrite it.  The
                # park draws its tiebreak sequence number at the same
                # point call_at would have.
                if self._wake_generation != generation:
                    return
                self._pending_wake_at = when
                self._pending_wake_seq = next(self.sim._sequence)
                if not (owner._in_drive or owner.active):
                    owner._sync_driver()  # park_changed(), inlined
                return
            # Solo lane: the owning batch will drain() synchronously.
            # Park the exact fire time the event-driven engine would
            # have used, so the warped timeline stays bitwise equal.
            self._pending_wake_at = when
            return
        self._wake_handle = self.sim.call_at(
            when, lambda: self._on_wake(generation), cancellable=True)

    def _next_horizon(self) -> float | None:
        """Seconds until the earliest queued completion (None if
        nothing is receiving service)."""
        rates = self.current_rates()
        horizon = None
        for task, rate in zip(self._tasks, rates, strict=True):
            if rate <= _EPSILON:
                continue
            eta = task.work_remaining / rate
            if horizon is None or eta < horizon:
                horizon = eta
        return horizon

    # -- fast path (repro.sim.fastpath) --------------------------------

    def set_autodrain(self, enabled: bool) -> None:
        """Enter/leave fast-path mode.  Entering keeps an already
        queued wake-up where it is (:meth:`drain` absorbs it); leaving
        must go through :meth:`rearm` instead, which re-queues the
        parked wake."""
        self._autodrain = enabled

    def drain(self) -> None:
        """Serve the queue to completion by warping the clock.

        Replays exactly the wake-cycle float operations of the
        event-driven path — advance, pop, gauge sample, next horizon —
        in the same order, without queue round-trips.  Only a fast-path
        batch that owns the simulator clock may call this.
        """
        if self._wake_handle is not None:
            # A wake queued before the batch opened (e.g. a background
            # reload already in flight): absorb it at its exact time.
            self._pending_wake_at = self._wake_handle.when
            self.sim.cancel(self._wake_handle)
            self._wake_handle = None
        while self._tasks:
            when = self._pending_wake_at
            if when is None:
                return  # starved queue: nothing will ever complete
            self.sim.warp(when)
            self._advance()
            self._reschedule()

    def serve_solo(self, work: float, tag: str) -> ServiceRecord:
        """Fused submit + drain for an empty autodrained resource.

        The fast path's hot loop: one subtask on an otherwise idle
        resource, served to completion in closed form, returning the
        :class:`ServiceRecord` directly — no :class:`Event`, no
        generator round-trip.  Performs the *identical float operations
        in the identical order* as ``submit()`` followed by ``drain()``
        — the ledger updates, segment merges, and the completion record
        are bitwise equal (the differential suite pins the
        equivalence).  Falls back to the generic pair whenever any
        precondition is off.
        """
        head_rate = self._solo_rate
        if head_rate is None:
            rates = self._policy(1)
            head_rate = self._solo_rate = rates[0] if rates else 0.0
        if (not self._autodrain or self._tasks or work <= _EPSILON
                or head_rate <= _EPSILON
                or self._level_gauge is not None):
            event = self.submit(work, tag=tag)
            self.drain()
            if not event.triggered:
                raise ResourceError(
                    f"fast path starved on {self.name!r}: the policy "
                    f"serves the queue head at rate 0")
            return event.value
        sim = self.sim
        now = sim._now
        # submit(): an idle resource's _advance only moves the cursor
        # (no tasks -> level 0, nothing served).
        last = now
        self.work_submitted += work
        generation = self._wake_generation + 1
        remaining = work
        started: float | None = None
        served_by_tag = self.served_by_tag
        record_segments = self._record_segments
        # drain(): each cycle jumps to the closed-form completion
        # horizon and replays the reference wake's arithmetic.
        while True:
            when = last + max(remaining / head_rate, 0.0)
            dt = when - last
            if dt > _EPSILON:
                level = min(1.0, 0 + head_rate)
                if level > _EPSILON:
                    self.busy_seconds += level * dt
                    if record_segments:
                        # _append_segment inlined (dt > 0 already rules
                        # out the zero-duration guard): merge onto an
                        # unsealed contiguous same-level segment, else
                        # start a new one.
                        segments = self.segments
                        if len(segments) > self._segment_seal:
                            prev = segments[-1]
                            if (abs(prev.end - last) <= _EPSILON
                                    and abs(prev.level - level) <= 1e-6):
                                prev.end = when
                            else:
                                segments.append(
                                    BusySegment(last, when, level))
                        else:
                            segments.append(
                                BusySegment(last, when, level))
                if started is None:
                    started = last
                delivered = min(remaining, head_rate * dt)
                remaining -= delivered
                self.work_served += delivered
                served_by_tag[tag] = (
                    served_by_tag.get(tag, 0.0) + delivered)
            last = when
            generation += 1
            if remaining <= _EPSILON:
                break
        sim._now = when
        self._last_update = when
        self._wake_generation = generation
        return ServiceRecord(
            submitted_at=now,
            started_at=started if started is not None else when,
            finished_at=when, work=work)

    def rearm(self) -> None:
        """Leave fast-path mode, re-queueing the parked wake (if any).

        Called when a solo batch closes with a task still in flight (a
        background reload crossing the batch boundary) and when a
        coordinated engine deactivates: the wake returns to the event
        queue at the exact parked time — and, in coordinated mode, at
        the exact tiebreak sequence number it drew when it parked, so
        same-instant races resolve in the reference order.
        """
        self._autodrain = False
        self._wake_owner = None
        when, self._pending_wake_at = self._pending_wake_at, None
        seq, self._pending_wake_seq = self._pending_wake_seq, None
        if when is None or not self._tasks:
            return
        generation = self._wake_generation
        self._wake_handle = self.sim.call_at(
            when, lambda: self._on_wake(generation), cancellable=True,
            sequence=seq)

    # -- coordinated fast path (multi-job groups) ----------------------

    def set_wake_owner(self, owner) -> None:
        """Enter coordinated fast-path mode under ``owner``.

        The resource stays permanently autodrained: every wake the
        reference engine would queue is parked as ``(when, seq)`` and
        the owner is notified so it can maintain one real driver event
        at the group's earliest parked wake.  :meth:`rearm` leaves this
        mode.
        """
        self._wake_owner = owner
        self._autodrain = True

    def serve_parked(self) -> None:
        """Serve one parked wake — the coordinated drive's hot step.

        The caller has warped the clock to the parked fire time.
        Semantically identical to the reference engine's ``_on_wake``
        (``_advance`` + ``_reschedule``), but fused: the per-position
        rates, capacity level, and active-index set are memoized per
        queue length (the "per-segment fixed point" — rates depend
        only on the queue length, which is constant between structural
        changes), and no cancellation/queue traffic is paid.  Float
        operations are replayed in the reference order, so the result
        is bitwise equal.
        """
        if self._level_gauge is not None:
            # Tracing samples the level at every rate change; take the
            # generic path so gauge points land identically.
            self._advance()
            self._reschedule()
            return
        sim = self.sim
        now = sim._now
        # _advance(), inlined (the memoized coordinated branch): this
        # is the single hottest call site in a drive, one per wake.
        dt = now - self._last_update
        if dt <= _EPSILON:
            self._last_update = now
        else:
            tasks = self._tasks
            cached = self._rates_cache.get(len(tasks))
            if cached is None:
                cached = self._rates_for(len(tasks))
            rates, level, active = cached
            last_update = self._last_update
            if level > _EPSILON:
                self.busy_seconds += level * dt
                if self._record_segments:
                    # _append_segment inlined (dt > 0 already rules out
                    # the zero-duration guard).
                    segments = self.segments
                    if len(segments) > self._segment_seal:
                        prev = segments[-1]
                        if (abs(prev.end - last_update) <= _EPSILON
                                and abs(prev.level - level) <= 1e-6):
                            prev.end = now
                        else:
                            segments.append(
                                BusySegment(last_update, now, level))
                    else:
                        segments.append(
                            BusySegment(last_update, now, level))
            served_by_tag = self.served_by_tag
            for index in active:
                task = tasks[index]
                if task.started_at is None:
                    task.started_at = last_update
                delivered = min(task.work_remaining, rates[index] * dt)
                task.work_remaining -= delivered
                task.served += delivered
                self.work_served += delivered
                tag = task.tag
                if tag is not None:
                    served_by_tag[tag] = (
                        served_by_tag.get(tag, 0.0) + delivered)
            self._last_update = now
        # _reschedule(), fused.  No wake handle to cancel and no gauge
        # to sample in this mode.
        self._pending_wake_at = None
        self._pending_wake_seq = None
        self._wake_generation += 1
        generation = self._wake_generation
        # _pop_finished(), single-completion case inlined: a wake fires
        # at the minimum completion horizon, so almost every serve pops
        # exactly one task.  Completion callbacks may resume processes
        # that submit() back into this queue.
        tasks = self._tasks
        first = -1
        for index, task in enumerate(tasks):
            if task.work_remaining <= _EPSILON:
                first = index
                break
        if first >= 0:
            for index in range(first + 1, len(tasks)):
                if tasks[index].work_remaining <= _EPSILON:
                    self._pop_finished()  # simultaneous completions
                    break
            else:
                self._complete(tasks.pop(first))
        owner = self._wake_owner
        if owner is None:
            # The engine deactivated while a completion callback ran
            # (fast-path teardown mid-serve): fall back to the generic
            # rescheduling pass, which queues a real wake.
            self._reschedule()
            return
        # No owner notification on any exit: serve_parked only runs
        # inside the owner's _drive loop (which rescans every park on
        # each step and reconciles the driver once, on exit), so
        # park_changed would be suppressed anyway.
        tasks = self._tasks
        if not tasks:
            return
        cached = self._rates_cache.get(len(tasks))
        if cached is None:
            cached = self._rates_for(len(tasks))
        rates, _level, active = cached
        horizon = None
        for index in active:
            eta = tasks[index].work_remaining / rates[index]
            if horizon is None or eta < horizon:
                horizon = eta
        if horizon is None:
            return
        if self._wake_generation != generation:
            return  # superseded by a nested reschedule in _pop_finished
        self._pending_wake_at = now + max(horizon, 0.0)
        self._pending_wake_seq = next(sim._sequence)  # draw_sequence()

    def _rates_for(
            self, n: int
    ) -> tuple[tuple[float, ...], float, tuple[int, ...]]:
        """Memoize (padded rates, capacity level, active indices) for a
        queue of length ``n``.  ``level`` reproduces ``min(1.0,
        sum(rates))`` over the padded list and ``active`` the indices
        ``_advance``/``_next_horizon`` would not skip, so the fused
        path replays identical arithmetic."""
        base = self._policy(n)
        nb = len(base)
        rates = tuple(base[i] if i < nb else 0.0 for i in range(n))
        level = min(1.0, sum(rates))
        active = tuple(i for i, r in enumerate(rates) if r > _EPSILON)
        entry = (rates, level, active)
        self._rates_cache[n] = entry
        return entry

    def _sample_level(self) -> None:
        """Record the delivered service level going forward from now."""
        level = min(1.0, sum(self.current_rates())) if self._tasks else 0.0
        if level != self._last_level:
            self._last_level = level
            self._level_gauge.set(level)

    def _on_wake(self, generation: int) -> None:
        if generation != self._wake_generation:
            return  # superseded by a later submit/cancel/completion
        self._advance()
        self._reschedule()

    def _pop_finished(self) -> None:
        # Scan-before-allocate: most rescheduling passes pop nothing
        # (every submit, every cancel) or exactly one task (every
        # completion wake), so neither common case may build throwaway
        # lists.
        tasks = self._tasks
        first = -1
        for index, task in enumerate(tasks):
            if task.work_remaining <= _EPSILON:
                first = index
                break
        if first < 0:
            return
        for index in range(first + 1, len(tasks)):
            if tasks[index].work_remaining <= _EPSILON:
                # Multiple simultaneous completions: rebuild the queue
                # and deliver in FIFO order.
                finished = [t for t in tasks
                            if t.work_remaining <= _EPSILON]
                self._tasks = [t for t in tasks
                               if t.work_remaining > _EPSILON]
                for task in finished:
                    self._complete(task)
                return
        self._complete(tasks.pop(first))

    def _complete(self, task: _Task) -> None:
        started = task.started_at if task.started_at is not None \
            else self.sim.now
        record = ServiceRecord(submitted_at=task.submitted_at,
                               started_at=started,
                               finished_at=self.sim.now,
                               work=task.work_total)
        task.event.succeed(record)
